package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/rsn"
)

// The streaming scale-up generator emits SIB-hierarchy scan networks
// of 100k-1M+ scan flip-flops directly as ICL text, never holding the
// network in memory: the only state is the recursion stack of the SIB
// tree (depth log_fanout(leaves)), the buffered writer, and the
// key-gate sample of an optional obfuscation overlay. Peak heap is
// therefore bounded by O(depth + key bits) regardless of TargetScanFFs
// (measured: ~10 MB peak RSS for 1M scan FFs including the Go runtime;
// see EXPERIMENTS.md). The same (config, seed) pair always streams the
// same bytes.

// ScaleGenConfig parameterizes one streamed network.
type ScaleGenConfig struct {
	// Name is the ScanNetwork name (default "scale<TargetScanFFs>").
	Name string
	// TargetScanFFs is the total scan flip-flop count to reach.
	TargetScanFFs int
	// SIBFanout is the number of children per SIB tree node
	// (default 8).
	SIBFanout int
	// LeafLen is the scan length of each leaf register (default 16;
	// the last leaf takes the remainder).
	LeafLen int
	// Modules is the number of modules registers are spread over
	// (default 16, clamped to the register count).
	Modules int
	// WithSpec embeds a generated security specification (Categories
	// plus per-module Trust/Accepts attributes).
	WithSpec bool
	// Categories is the specification's category universe (default 4).
	Categories int
	// Seed makes the stream deterministic.
	Seed int64
	// ObfKeyBits, when positive, additionally selects a key-gate
	// overlay of that many bits; StreamScaleICL then writes the
	// rsnsec.obfus-overlay/v1 sidecar (with the embedded defender key)
	// to its overlay writer. ObfMuxShare is the fraction of key bits
	// gating mux selects (negative = 0.5); ObfDynamic selects the
	// LFSR key schedule.
	ObfKeyBits  int
	ObfMuxShare float64
	ObfDynamic  bool
}

// ScaleStats summarizes what was streamed.
type ScaleStats struct {
	Registers int
	ScanFFs   int
	Muxes     int
	Modules   int
	Depth     int
	KeyBits   int
}

func (cfg *ScaleGenConfig) defaults() error {
	if cfg.TargetScanFFs < 1 {
		return fmt.Errorf("bench: TargetScanFFs %d", cfg.TargetScanFFs)
	}
	if cfg.SIBFanout == 0 {
		cfg.SIBFanout = 8
	}
	if cfg.SIBFanout < 2 {
		return fmt.Errorf("bench: SIBFanout %d (want >= 2)", cfg.SIBFanout)
	}
	if cfg.LeafLen == 0 {
		cfg.LeafLen = 16
	}
	if cfg.LeafLen < 1 {
		return fmt.Errorf("bench: LeafLen %d", cfg.LeafLen)
	}
	if cfg.Modules == 0 {
		cfg.Modules = 16
	}
	if cfg.Modules < 1 {
		return fmt.Errorf("bench: Modules %d", cfg.Modules)
	}
	if cfg.Categories == 0 {
		cfg.Categories = 4
	}
	if cfg.Categories < 1 {
		return fmt.Errorf("bench: Categories %d", cfg.Categories)
	}
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("scale%d", cfg.TargetScanFFs)
	}
	return nil
}

// countNodes returns the number of SIB tree nodes (= bypass muxes)
// over nLeaves leaves with the given fanout, and the tree depth.
func countNodes(nLeaves, fanout int) (nodes, depth int) {
	var walk func(n int) (int, int)
	walk = func(n int) (int, int) {
		if n <= fanout {
			return 1, 1
		}
		per := (n + fanout - 1) / fanout
		total, deepest := 1, 0
		for lo := 0; lo < n; lo += per {
			hi := lo + per
			if hi > n {
				hi = n
			}
			t, d := walk(hi - lo)
			total += t
			if d > deepest {
				deepest = d
			}
		}
		return total, deepest + 1
	}
	return walk(nLeaves)
}

// scaleOverlay is the sampled key-gate placement: register/mux index
// (in emission order) to key bit.
type scaleOverlay struct {
	regBit map[int]int
	muxBit map[int]int
	key    []bool
}

// sampleOverlay picks gate positions deterministically from the seed.
// Mux gates take the low key bits, XOR gates the rest — mirroring
// obfus.ObfuscateNetwork's layout.
func sampleOverlay(cfg *ScaleGenConfig, nRegs, nMuxes int) (*scaleOverlay, error) {
	share := cfg.ObfMuxShare
	if share < 0 {
		share = 0.5
	}
	if share > 1 {
		share = 1
	}
	nMux := int(float64(cfg.ObfKeyBits) * share)
	if nMux > nMuxes {
		nMux = nMuxes
	}
	nXor := cfg.ObfKeyBits - nMux
	if nXor > nRegs {
		spill := nXor - nRegs
		nXor = nRegs
		nMux += spill
		if nMux > nMuxes {
			return nil, fmt.Errorf("bench: %d key bits exceed gate capacity (%d registers + %d muxes)",
				cfg.ObfKeyBits, nRegs, nMuxes)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x6f627573)) // "obus"
	pick := func(space, count int, taken map[int]int, bit0 int) {
		for i := 0; i < count; i++ {
			for {
				idx := rng.Intn(space)
				if _, dup := taken[idx]; !dup {
					taken[idx] = bit0 + i
					break
				}
			}
		}
	}
	ov := &scaleOverlay{regBit: map[int]int{}, muxBit: map[int]int{}}
	pick(nMuxes, nMux, ov.muxBit, 0)
	pick(nRegs, nXor, ov.regBit, nMux)
	ov.key = rsn.KeyFromSeed(cfg.Seed, cfg.ObfKeyBits)
	return ov, nil
}

// overlaySidecar mirrors the rsnsec.obfus-overlay/v1 wire format of
// rsn.MarshalObfuscation (names instead of element ids).
type overlaySidecar struct {
	Schema  string            `json:"schema"`
	KeyBits int               `json:"key_bits"`
	Dynamic bool              `json:"dynamic,omitempty"`
	Taps    []int             `json:"taps,omitempty"`
	Gates   []overlayGateSide `json:"gates"`
	Key     string            `json:"key,omitempty"`
}

type overlayGateSide struct {
	Kind string `json:"kind"`
	Elem string `json:"elem"`
	Bit  int    `json:"bit"`
}

// StreamScaleICL streams the configured SIB-hierarchy network as ICL
// to w. When cfg.ObfKeyBits > 0, the overlay sidecar (with the
// embedded defender key) is written to ovw, which must be non-nil in
// that case. The ICL is valid for the repository's own parser; for
// large targets the consumer decides whether to materialize it.
func StreamScaleICL(w io.Writer, ovw io.Writer, cfg ScaleGenConfig) (*ScaleStats, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	nLeaves := (cfg.TargetScanFFs + cfg.LeafLen - 1) / cfg.LeafLen
	nMuxes, depth := countNodes(nLeaves, cfg.SIBFanout)
	nModules := cfg.Modules
	if nModules > nLeaves {
		nModules = nLeaves
	}
	st := &ScaleStats{Registers: nLeaves, ScanFFs: cfg.TargetScanFFs,
		Muxes: nMuxes, Modules: nModules, Depth: depth}

	var ov *scaleOverlay
	if cfg.ObfKeyBits > 0 {
		if ovw == nil {
			return nil, fmt.Errorf("bench: ObfKeyBits set but no overlay writer given")
		}
		var err error
		if ov, err = sampleOverlay(&cfg, nLeaves, nMuxes); err != nil {
			return nil, err
		}
		st.KeyBits = cfg.ObfKeyBits
	}

	bw := bufio.NewWriterSize(w, 1<<16)
	fmt.Fprintf(bw, "ScanNetwork %q {\n", cfg.Name)

	// Module declarations, with the generated specification when asked.
	specRNG := rand.New(rand.NewSource(cfg.Seed ^ 0x73706563)) // "spec"
	if cfg.WithSpec {
		fmt.Fprintf(bw, "  Categories %d;\n", cfg.Categories)
	}
	for m := 0; m < nModules; m++ {
		if !cfg.WithSpec {
			fmt.Fprintf(bw, "  Module \"m%d\";\n", m)
			continue
		}
		trust := specRNG.Intn(cfg.Categories)
		accepts := uint64(0)
		for c := 0; c < cfg.Categories; c++ {
			if specRNG.Intn(2) == 1 {
				accepts |= 1 << uint(c)
			}
		}
		accepts |= 1 << uint(specRNG.Intn(cfg.Categories)) // never empty
		fmt.Fprintf(bw, "  Module \"m%d\" { Trust %d; Accepts ", m, trust)
		first := true
		for c := 0; c < cfg.Categories; c++ {
			if accepts&(1<<uint(c)) != 0 {
				if !first {
					bw.WriteString(", ")
				}
				fmt.Fprintf(bw, "%d", c)
				first = false
			}
		}
		bw.WriteString("; }\n")
	}

	// The SIB tree: leaves are registers, every node closes with a
	// bypass mux whose inputs are (chain end, node entry).
	var gates []overlayGateSide
	regIdx, muxIdx := 0, 0
	cur := "SI"
	var emit func(lo, hi int) error
	emit = func(lo, hi int) error {
		entry := cur
		if hi-lo <= cfg.SIBFanout {
			for i := lo; i < hi; i++ {
				length := cfg.LeafLen
				if i == nLeaves-1 {
					length = cfg.TargetScanFFs - (nLeaves-1)*cfg.LeafLen
				}
				name := fmt.Sprintf("R%d", regIdx)
				mod := i * nModules / nLeaves
				fmt.Fprintf(bw, "  ScanRegister %q { Length %d; ScanInSource %s; Module \"m%d\"; }\n",
					name, length, cur, mod)
				if ov != nil {
					if bit, hit := ov.regBit[regIdx]; hit {
						gates = append(gates, overlayGateSide{Kind: rsn.KeyXOR, Elem: name, Bit: bit})
					}
				}
				cur = fmt.Sprintf("Register %q", name)
				regIdx++
			}
		} else {
			per := (hi - lo + cfg.SIBFanout - 1) / cfg.SIBFanout
			for clo := lo; clo < hi; clo += per {
				chi := clo + per
				if chi > hi {
					chi = hi
				}
				if err := emit(clo, chi); err != nil {
					return err
				}
			}
		}
		name := fmt.Sprintf("S%d", muxIdx)
		fmt.Fprintf(bw, "  ScanMux %q { Input %s; Input %s; }\n", name, cur, entry)
		if ov != nil {
			if bit, hit := ov.muxBit[muxIdx]; hit {
				gates = append(gates, overlayGateSide{Kind: rsn.KeyMux, Elem: name, Bit: bit})
			}
		}
		cur = fmt.Sprintf("Mux %q", name)
		muxIdx++
		return nil
	}
	if err := emit(0, nLeaves); err != nil {
		return nil, err
	}
	fmt.Fprintf(bw, "  ScanOutSource %s;\n}\n", cur)
	if err := bw.Flush(); err != nil {
		return nil, err
	}

	if ov != nil {
		doc := overlaySidecar{
			Schema:  rsn.ObfuscationSchema,
			KeyBits: cfg.ObfKeyBits,
			Dynamic: cfg.ObfDynamic,
			Gates:   gates,
			Key:     rsn.KeyHex(ov.key),
		}
		if cfg.ObfDynamic {
			doc.Taps = []int{0}
			if mid := cfg.ObfKeyBits / 2; mid > 0 {
				doc.Taps = append(doc.Taps, mid)
			}
		}
		enc := json.NewEncoder(ovw)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			return nil, err
		}
	}
	return st, nil
}
