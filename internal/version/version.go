// Package version carries the build identity every binary and metrics
// endpoint reports: a version string and VCS commit injected at link
// time, with a debug.ReadBuildInfo fallback for plain `go build`/`go
// run` invocations. Inject with
//
//	go build -ldflags "-X repro/internal/version.Version=v1.2.3 \
//	                   -X repro/internal/version.Commit=$(git rev-parse --short HEAD)"
package version

import (
	"fmt"
	"runtime"
	"runtime/debug"

	"repro/internal/obs"
)

// Version and Commit are the link-time injection points. Leave them
// untouched to fall back to module build info.
var (
	Version = ""
	Commit  = ""
)

// Info is the resolved build identity.
type Info struct {
	Version   string
	Commit    string
	GoVersion string
}

// Get resolves the build identity: ldflags first, then the module
// version and vcs.revision of debug.ReadBuildInfo, then "dev".
func Get() Info {
	inf := Info{Version: Version, Commit: Commit, GoVersion: runtime.Version()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		if inf.Version == "" && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			inf.Version = bi.Main.Version
		}
		if inf.Commit == "" {
			for _, s := range bi.Settings {
				if s.Key == "vcs.revision" {
					inf.Commit = s.Value
					if len(inf.Commit) > 12 {
						inf.Commit = inf.Commit[:12]
					}
				}
			}
		}
	}
	if inf.Version == "" {
		inf.Version = "dev"
	}
	if inf.Commit == "" {
		inf.Commit = "unknown"
	}
	return inf
}

// String renders the one-line -version output: "TOOL VERSION (commit
// COMMIT, GOVERSION, GOOS/GOARCH)".
func String(tool string) string {
	inf := Get()
	return fmt.Sprintf("%s %s (commit %s, %s, %s/%s)",
		tool, inf.Version, inf.Commit, inf.GoVersion, runtime.GOOS, runtime.GOARCH)
}

// Register exposes the build identity as the conventional
// constant-value info gauge
//
//	rsnsec_build_info{version="...",commit="...",go_version="..."} 1
//
// so every scrape ties the series it collects to the exact build that
// produced them.
func Register(reg *obs.Registry) {
	reg.SetHelp("rsnsec_build_info", "Build identity (constant 1; the labels carry the information).")
	inf := Get()
	reg.Gauge(fmt.Sprintf("rsnsec_build_info{version=%q,commit=%q,go_version=%q}",
		inf.Version, inf.Commit, inf.GoVersion)).Set(1)
}
