package version

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestGetNeverEmpty(t *testing.T) {
	inf := Get()
	if inf.Version == "" || inf.Commit == "" || inf.GoVersion == "" {
		t.Errorf("Get() = %+v has empty fields", inf)
	}
}

func TestLdflagsOverride(t *testing.T) {
	oldV, oldC := Version, Commit
	defer func() { Version, Commit = oldV, oldC }()
	Version, Commit = "v9.9.9", "cafebabe"
	inf := Get()
	if inf.Version != "v9.9.9" || inf.Commit != "cafebabe" {
		t.Errorf("Get() = %+v, want the injected identity", inf)
	}
	if s := String("rsnsec"); !strings.HasPrefix(s, "rsnsec v9.9.9 (commit cafebabe, go") {
		t.Errorf("String() = %q", s)
	}
}

func TestRegisterBuildInfoGauge(t *testing.T) {
	reg := obs.NewRegistry()
	Register(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "rsnsec_build_info{version=") || !strings.Contains(out, "go_version=") {
		t.Errorf("exposition missing build info:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "rsnsec_build_info{") && !strings.HasSuffix(line, " 1") {
			t.Errorf("build info gauge must be constant 1: %q", line)
		}
	}
}
