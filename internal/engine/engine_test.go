package engine

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.WorkerCount() < 1 {
		t.Fatalf("WorkerCount = %d, want >= 1", o.WorkerCount())
	}
	if o.Ctx() == nil {
		t.Fatal("Ctx must never be nil")
	}
	if o.Err() != nil {
		t.Fatal("background context must not be cancelled")
	}
	o.Logf("no sink: must not panic")
	if o.Stage("x") != nil {
		t.Fatal("Stage without Stats must be nil")
	}
}

func TestOptionsExplicit(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var lines []string
	o := Options{
		Workers:  3,
		Context:  ctx,
		Progress: func(f string, a ...any) { lines = append(lines, f) },
		Stats:    NewStats(),
	}
	if o.WorkerCount() != 3 {
		t.Fatalf("WorkerCount = %d", o.WorkerCount())
	}
	if o.Err() == nil {
		t.Fatal("cancelled context must report an error")
	}
	o.Logf("hello %d", 1)
	if len(lines) != 1 {
		t.Fatalf("progress lines = %d", len(lines))
	}
	if o.Stage("s") == nil {
		t.Fatal("Stage with Stats must not be nil")
	}
}

func TestNilStageIsSafe(t *testing.T) {
	var st *StageStats
	st.Start()()
	st.AddQueries(7)
	st.AddItems(3)
	st.AddSaved(2)
	if st.Wall() != 0 || st.Calls() != 0 || st.Queries() != 0 || st.Items() != 0 || st.Saved() != 0 {
		t.Fatal("nil stage must report zeros")
	}
	var s *Stats
	if s.Stage("x") != nil || s.Snapshot() != nil {
		t.Fatal("nil Stats must be inert")
	}
}

func TestStageAccumulates(t *testing.T) {
	s := NewStats()
	st := s.Stage("one-cycle")
	done := st.Start()
	time.Sleep(time.Millisecond)
	done()
	st.AddQueries(5)
	st.AddItems(4)
	st.AddItems(3)
	st.AddSaved(11)
	if st.Wall() <= 0 {
		t.Fatal("wall time not recorded")
	}
	if st.Calls() != 1 || st.Queries() != 5 {
		t.Fatalf("calls=%d queries=%d", st.Calls(), st.Queries())
	}
	if st.Items() != 7 || st.Saved() != 11 {
		t.Fatalf("items=%d saved=%d", st.Items(), st.Saved())
	}
	if s.Stage("one-cycle") != st {
		t.Fatal("Stage must return the same collector per name")
	}
}

// TestStatsConcurrent hammers one Stats from many goroutines; the race
// detector (CI's -race job) validates the synchronization, and the
// totals validate atomicity.
func TestStatsConcurrent(t *testing.T) {
	s := NewStats()
	const goroutines, perG = 16, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			names := []string{"one-cycle", "bridge", "closure", "propagate"}
			for i := 0; i < perG; i++ {
				st := s.Stage(names[(g+i)%len(names)])
				st.Start()()
				st.AddQueries(1)
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, st := range s.Snapshot() {
		total += st.Queries
		if st.Calls != st.Queries {
			t.Fatalf("stage %s: calls=%d queries=%d", st.Name, st.Calls, st.Queries)
		}
	}
	if total != goroutines*perG {
		t.Fatalf("total queries = %d, want %d", total, goroutines*perG)
	}
}

func TestSnapshotOrderAndString(t *testing.T) {
	s := NewStats()
	s.Stage("b").AddQueries(1)
	s.Stage("a").AddQueries(2)
	s.Stage("b").AddQueries(1)
	s.Stage("a").AddItems(9)
	s.Stage("a").AddSaved(6)
	snap := s.Snapshot()
	// Unknown stages render in name order regardless of first use.
	if len(snap) != 2 || snap[0].Name != "a" || snap[1].Name != "b" {
		t.Fatalf("snapshot order wrong: %+v", snap)
	}
	if snap[0].Items != 9 || snap[0].Saved != 6 {
		t.Fatalf("snapshot counters wrong: %+v", snap[0])
	}
	out := s.String()
	if !strings.Contains(out, "stage") || !strings.Contains(out, "b") || !strings.Contains(out, "a") {
		t.Fatalf("table missing content:\n%s", out)
	}
	if !strings.Contains(out, "items") || !strings.Contains(out, "saved") {
		t.Fatalf("table missing counter columns:\n%s", out)
	}
	var empty *Stats
	if empty.String() != "engine: no stages recorded" {
		t.Fatal("empty stats string wrong")
	}
}

// TestSnapshotPipelineOrder pins the deterministic rendering order:
// known pipeline stages in execution order, regardless of the racy
// first-use order of concurrent circuits, then unknown stages by name.
func TestSnapshotPipelineOrder(t *testing.T) {
	s := NewStats()
	// Touch stages in scrambled order, as racing workers would.
	for _, name := range []string{"resolve", "zz-custom", "closure", "propagate-delta", "one-cycle", "aa-custom", "bridge", "pure-resolve", "propagate"} {
		s.Stage(name).AddQueries(1)
	}
	want := []string{"one-cycle", "bridge", "closure", "pure-resolve",
		"propagate", "propagate-delta", "resolve", "aa-custom", "zz-custom"}
	snap := s.Snapshot()
	if len(snap) != len(want) {
		t.Fatalf("snapshot has %d stages, want %d", len(snap), len(want))
	}
	for i, w := range want {
		if snap[i].Name != w {
			t.Fatalf("snapshot[%d] = %q, want %q (full: %+v)", i, snap[i].Name, w, snap)
		}
	}
}

// TestZeroValueStats covers the zero-value paths: a zero Stats is a
// working collector (lazy registry), and String is safe before any
// stage is recorded.
func TestZeroValueStats(t *testing.T) {
	var s Stats
	if got := s.String(); got != "engine: no stages recorded" {
		t.Fatalf("zero-value String = %q", got)
	}
	if len(s.Snapshot()) != 0 {
		t.Fatal("zero-value Snapshot must be empty")
	}
	s.Stage("closure").AddItems(3)
	if s.Registry() == nil {
		t.Fatal("zero-value Stats must create its registry lazily")
	}
	if got := s.Stage("closure").Items(); got != 3 {
		t.Fatalf("items = %d, want 3", got)
	}
	if out := s.String(); !strings.Contains(out, "closure") {
		t.Fatalf("String missing stage:\n%s", out)
	}
}

// TestStatsBackedByRegistry validates that stage counters are live in
// the backing metrics registry under their labelled series names.
func TestStatsBackedByRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewStatsOn(reg)
	s.Stage("closure").AddQueries(5)
	s.Stage("closure").AddItems(2)
	snap := reg.Snapshot()
	if got := snap[`engine_stage_queries_total{stage="closure"}`]; got != int64(5) {
		t.Fatalf("registry queries = %v, want 5", got)
	}
	if got := snap[`engine_stage_items_total{stage="closure"}`]; got != int64(2) {
		t.Fatalf("registry items = %v, want 2", got)
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `engine_stage_queries_total{stage="closure"} 5`) {
		t.Fatalf("prometheus exposition missing series:\n%s", buf.String())
	}
	reports := s.StageReports()
	if len(reports) != 1 || reports[0].Name != "closure" || reports[0].Queries != 5 {
		t.Fatalf("StageReports = %+v", reports)
	}
}
