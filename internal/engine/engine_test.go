package engine

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.WorkerCount() < 1 {
		t.Fatalf("WorkerCount = %d, want >= 1", o.WorkerCount())
	}
	if o.Ctx() == nil {
		t.Fatal("Ctx must never be nil")
	}
	if o.Err() != nil {
		t.Fatal("background context must not be cancelled")
	}
	o.Logf("no sink: must not panic")
	if o.Stage("x") != nil {
		t.Fatal("Stage without Stats must be nil")
	}
}

func TestOptionsExplicit(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var lines []string
	o := Options{
		Workers:  3,
		Context:  ctx,
		Progress: func(f string, a ...any) { lines = append(lines, f) },
		Stats:    NewStats(),
	}
	if o.WorkerCount() != 3 {
		t.Fatalf("WorkerCount = %d", o.WorkerCount())
	}
	if o.Err() == nil {
		t.Fatal("cancelled context must report an error")
	}
	o.Logf("hello %d", 1)
	if len(lines) != 1 {
		t.Fatalf("progress lines = %d", len(lines))
	}
	if o.Stage("s") == nil {
		t.Fatal("Stage with Stats must not be nil")
	}
}

func TestNilStageIsSafe(t *testing.T) {
	var st *StageStats
	st.Start()()
	st.AddQueries(7)
	st.AddItems(3)
	st.AddSaved(2)
	if st.Wall() != 0 || st.Calls() != 0 || st.Queries() != 0 || st.Items() != 0 || st.Saved() != 0 {
		t.Fatal("nil stage must report zeros")
	}
	var s *Stats
	if s.Stage("x") != nil || s.Snapshot() != nil {
		t.Fatal("nil Stats must be inert")
	}
}

func TestStageAccumulates(t *testing.T) {
	s := NewStats()
	st := s.Stage("one-cycle")
	done := st.Start()
	time.Sleep(time.Millisecond)
	done()
	st.AddQueries(5)
	st.AddItems(4)
	st.AddItems(3)
	st.AddSaved(11)
	if st.Wall() <= 0 {
		t.Fatal("wall time not recorded")
	}
	if st.Calls() != 1 || st.Queries() != 5 {
		t.Fatalf("calls=%d queries=%d", st.Calls(), st.Queries())
	}
	if st.Items() != 7 || st.Saved() != 11 {
		t.Fatalf("items=%d saved=%d", st.Items(), st.Saved())
	}
	if s.Stage("one-cycle") != st {
		t.Fatal("Stage must return the same collector per name")
	}
}

// TestStatsConcurrent hammers one Stats from many goroutines; the race
// detector (CI's -race job) validates the synchronization, and the
// totals validate atomicity.
func TestStatsConcurrent(t *testing.T) {
	s := NewStats()
	const goroutines, perG = 16, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			names := []string{"one-cycle", "bridge", "closure", "propagate"}
			for i := 0; i < perG; i++ {
				st := s.Stage(names[(g+i)%len(names)])
				st.Start()()
				st.AddQueries(1)
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, st := range s.Snapshot() {
		total += st.Queries
		if st.Calls != st.Queries {
			t.Fatalf("stage %s: calls=%d queries=%d", st.Name, st.Calls, st.Queries)
		}
	}
	if total != goroutines*perG {
		t.Fatalf("total queries = %d, want %d", total, goroutines*perG)
	}
}

func TestSnapshotOrderAndString(t *testing.T) {
	s := NewStats()
	s.Stage("b").AddQueries(1)
	s.Stage("a").AddQueries(2)
	s.Stage("b").AddQueries(1)
	s.Stage("a").AddItems(9)
	s.Stage("a").AddSaved(6)
	snap := s.Snapshot()
	if len(snap) != 2 || snap[0].Name != "b" || snap[1].Name != "a" {
		t.Fatalf("snapshot order wrong: %+v", snap)
	}
	if snap[1].Items != 9 || snap[1].Saved != 6 {
		t.Fatalf("snapshot counters wrong: %+v", snap[1])
	}
	out := s.String()
	if !strings.Contains(out, "stage") || !strings.Contains(out, "b") || !strings.Contains(out, "a") {
		t.Fatalf("table missing content:\n%s", out)
	}
	if !strings.Contains(out, "items") || !strings.Contains(out, "saved") {
		t.Fatalf("table missing counter columns:\n%s", out)
	}
	var empty *Stats
	if empty.String() != "engine: no stages recorded" {
		t.Fatal("empty stats string wrong")
	}
}
