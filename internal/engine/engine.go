// Package engine owns run orchestration for the analysis pipeline:
// worker-pool sizing, context cancellation, progress reporting and
// race-safe per-stage instrumentation. The dependency computation
// (internal/dep), the hybrid analysis (internal/hybrid), the
// experimental protocol (internal/exp) and the command-line binaries
// all thread an engine.Options through their entry points, so every
// later scaling change (sharded closure, cached cones, multi-backend
// solvers) plugs into one seam.
//
// Instrumentation sits on top of internal/obs: every StageStats
// counter is an obs.Counter registered in the Stats' metrics registry
// (engine_stage_*_total{stage="..."}), so a long-running process can
// expose the same numbers live over expvar and the Prometheus-text
// endpoint of obs.StartDebug while Stats.String still renders the
// end-of-run table. Options additionally carries an optional
// obs.Tracer and parent span, giving every stage a place in the
// hierarchical run > circuit > stage > query trace journal.
//
// All types are safe to use at their zero value: a zero Options runs
// with all CPUs, a background context, no progress output, no stats
// collection and no tracing, and every method tolerates nil receivers
// where a stage, stats sink, or tracer is absent.
package engine

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Options configures one analysis run. The zero value is a valid
// default configuration.
type Options struct {
	// Workers bounds the number of concurrent workers of parallel
	// stages (the SAT worker pool of the 1-cycle dependency
	// computation); <= 0 uses runtime.NumCPU().
	Workers int
	// Context cancels the run. Parallel stages honor cancellation
	// between SAT queries; sequential stages between iterations. A nil
	// Context means context.Background().
	Context context.Context
	// Progress, when non-nil, receives coarse human-readable progress
	// lines. It may be called from the goroutine driving a stage; it is
	// never called concurrently from pool workers.
	Progress func(format string, args ...any)
	// Logger, when non-nil, receives the same progress lines as
	// structured debug-level records (in addition to Progress when both
	// are set). Bind component and correlation attributes before
	// passing it in (e.g. olog.Component(lg, "engine").With("job", id)).
	Logger *slog.Logger
	// Stats, when non-nil, accumulates per-stage wall times and query
	// counts across the whole pipeline. All updates are race-safe, so
	// one Stats may be shared by concurrent analyses.
	Stats *Stats
	// Tracer, when non-nil, receives hierarchical spans
	// (run > circuit > stage > query) as JSONL events; high-frequency
	// query spans can be sampled (obs.Tracer.SampleEvery).
	Tracer *obs.Tracer
	// TraceParent is the enclosing span for spans this run starts; nil
	// makes them roots.
	TraceParent *obs.Span
}

// WorkerCount resolves the effective worker-pool size.
func (o Options) WorkerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

// Ctx resolves the run context, never nil.
func (o Options) Ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// Err reports the context's cancellation state.
func (o Options) Err() error { return o.Ctx().Err() }

// Logf emits one progress line to the configured Progress sink and/or
// structured Logger (debug level).
func (o Options) Logf(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(format, args...)
	}
	if o.Logger != nil && o.Logger.Enabled(o.Ctx(), slog.LevelDebug) {
		o.Logger.LogAttrs(o.Ctx(), slog.LevelDebug, fmt.Sprintf(format, args...))
	}
}

// Stage returns the named stage collector of the configured Stats, or
// nil when stats are not collected. The returned *StageStats tolerates
// nil receivers, so callers never need to branch.
func (o Options) Stage(name string) *StageStats {
	return o.Stats.Stage(name)
}

// Registry returns the metrics registry backing the configured Stats,
// or nil when stats are not collected. A nil registry hands out nil
// metrics whose methods no-op.
func (o Options) Registry() *obs.Registry {
	return o.Stats.Registry()
}

// StartSpan opens a trace span under the run's parent span. The span
// (and a nil span, when no tracer is configured) is safe to use and
// must be closed with End.
func (o Options) StartSpan(name string, attrs ...obs.Attr) *obs.Span {
	return o.Tracer.Start(o.TraceParent, name, attrs...)
}

// WithParent returns a copy of the options whose spans nest under s.
func (o Options) WithParent(s *obs.Span) Options {
	o.TraceParent = s
	return o
}

// Stats accumulates race-safe per-stage instrumentation of one or more
// pipeline runs on top of an obs metrics registry: each stage's
// counters are registered as engine_stage_*_total{stage="name"} series,
// so the same numbers feed the end-of-run table and any live
// /metrics or expvar exposition.
type Stats struct {
	mu     sync.Mutex
	reg    *obs.Registry
	stages []*StageStats
	byName map[string]*StageStats
}

// NewStats returns an empty stats collector backed by a private
// metrics registry.
func NewStats() *Stats { return NewStatsOn(nil) }

// NewStatsOn returns a stats collector registering its stage counters
// in reg (a process-wide registry served by obs.StartDebug, say). A
// nil reg creates a private registry.
func NewStatsOn(reg *obs.Registry) *Stats {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Stats{reg: reg}
}

// Registry returns the backing metrics registry (never nil for a
// non-nil Stats; a zero-value Stats creates its registry lazily).
func (s *Stats) Registry() *obs.Registry {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.registryLocked()
}

func (s *Stats) registryLocked() *obs.Registry {
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	return s.reg
}

// Stage returns the collector of the named stage, creating it on first
// use. A nil *Stats returns nil (collection disabled).
func (s *Stats) Stage(name string) *StageStats {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.byName[name]; ok {
		return st
	}
	if s.byName == nil {
		s.byName = make(map[string]*StageStats)
	}
	reg := s.registryLocked()
	label := fmt.Sprintf("{stage=%q}", name)
	st := &StageStats{
		Name:    name,
		wall:    reg.Counter("engine_stage_wall_ns_total" + label),
		calls:   reg.Counter("engine_stage_calls_total" + label),
		queries: reg.Counter("engine_stage_queries_total" + label),
		items:   reg.Counter("engine_stage_items_total" + label),
		saved:   reg.Counter("engine_stage_saved_total" + label),
	}
	s.byName[name] = st
	s.stages = append(s.stages, st)
	return st
}

// StageStats collects one pipeline stage's wall time, invocation count,
// query count, work-item count and reuse count. The counters live in
// the owning Stats' metrics registry; all methods are atomic and
// tolerate nil receivers.
type StageStats struct {
	Name    string
	wall    *obs.Counter // cumulative nanoseconds
	calls   *obs.Counter // completed invocations
	queries *obs.Counter // SAT queries / worklist evaluations
	items   *obs.Counter // units of work processed (SCCs, candidates, rows)
	saved   *obs.Counter // work units reused from a cache instead of recomputed
}

// Start begins timing one invocation and returns the function that
// ends it, adding the elapsed wall time.
func (st *StageStats) Start() func() {
	if st == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() {
		st.wall.Add(int64(time.Since(t0)))
		st.calls.Add(1)
	}
}

// AddQueries adds n to the stage's query counter.
func (st *StageStats) AddQueries(n int64) {
	if st != nil {
		st.queries.Add(n)
	}
}

// AddItems adds n to the stage's work-item counter (e.g. SCC components
// condensed, resolve candidates evaluated).
func (st *StageStats) AddItems(n int64) {
	if st != nil {
		st.items.Add(n)
	}
}

// AddSaved adds n to the stage's reuse counter: work units answered from
// a cached result (nodes whose attributes were reused from the parent
// network's fixed point) instead of recomputed.
func (st *StageStats) AddSaved(n int64) {
	if st != nil {
		st.saved.Add(n)
	}
}

// Wall returns the cumulative wall time.
func (st *StageStats) Wall() time.Duration {
	if st == nil {
		return 0
	}
	return time.Duration(st.wall.Value())
}

// Calls returns the number of completed invocations.
func (st *StageStats) Calls() int64 {
	if st == nil {
		return 0
	}
	return st.calls.Value()
}

// Queries returns the cumulative query count.
func (st *StageStats) Queries() int64 {
	if st == nil {
		return 0
	}
	return st.queries.Value()
}

// Items returns the cumulative work-item count.
func (st *StageStats) Items() int64 {
	if st == nil {
		return 0
	}
	return st.items.Value()
}

// Saved returns the cumulative reuse count.
func (st *StageStats) Saved() int64 {
	if st == nil {
		return 0
	}
	return st.saved.Value()
}

// StageSnapshot is one stage's totals at snapshot time.
type StageSnapshot struct {
	Name    string
	Wall    time.Duration
	Calls   int64
	Queries int64
	Items   int64
	Saved   int64
}

// stageRank fixes the rendering order of the known pipeline stages to
// their execution order. First-use order is not deterministic — worker
// pools of concurrent circuits reach stages in racy order — so
// Snapshot and String sort by this rank (unknown stages follow,
// alphabetically) to keep run-over-run output and reports comparable.
var stageRank = map[string]int{
	"one-cycle":       0,
	"sim-filter":      1, // runs inside one-cycle; reported right after it
	"bridge":          2,
	"closure":         3,
	"pure-resolve":    4,
	"propagate":       5,
	"propagate-delta": 6,
	"resolve":         7,
}

// stageLess orders stage names deterministically: known pipeline
// stages first in execution order, then unknown stages by name.
func stageLess(a, b string) bool {
	ra, oka := stageRank[a]
	rb, okb := stageRank[b]
	switch {
	case oka && okb:
		return ra < rb
	case oka:
		return true
	case okb:
		return false
	default:
		return a < b
	}
}

// Snapshot returns the per-stage totals in deterministic pipeline
// order (see stageRank).
func (s *Stats) Snapshot() []StageSnapshot {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	stages := append([]*StageStats(nil), s.stages...)
	s.mu.Unlock()
	sort.SliceStable(stages, func(i, j int) bool { return stageLess(stages[i].Name, stages[j].Name) })
	out := make([]StageSnapshot, len(stages))
	for i, st := range stages {
		out[i] = StageSnapshot{
			Name: st.Name, Wall: st.Wall(), Calls: st.Calls(),
			Queries: st.Queries(), Items: st.Items(), Saved: st.Saved(),
		}
	}
	return out
}

// StageReports returns the per-stage totals as run-report rows, in the
// same deterministic order as Snapshot.
func (s *Stats) StageReports() []obs.StageReport {
	snap := s.Snapshot()
	out := make([]obs.StageReport, len(snap))
	for i, st := range snap {
		out[i] = obs.StageReport{
			Name: st.Name, WallNS: int64(st.Wall), Calls: st.Calls,
			Queries: st.Queries, Items: st.Items, Saved: st.Saved,
		}
	}
	return out
}

// String renders the per-stage totals as an aligned table. It is safe
// on the zero value and on a nil *Stats (both render the empty
// placeholder).
func (s *Stats) String() string {
	snap := s.Snapshot()
	if len(snap) == 0 {
		return "engine: no stages recorded"
	}
	nameW := len("stage")
	for _, st := range snap {
		if len(st.Name) > nameW {
			nameW = len(st.Name)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-*s  %12s  %8s  %10s  %8s  %8s\n",
		nameW, "stage", "wall", "calls", "queries", "items", "saved")
	for _, st := range snap {
		fmt.Fprintf(&sb, "%-*s  %12s  %8d  %10d  %8d  %8d\n", nameW, st.Name,
			st.Wall.Round(time.Microsecond), st.Calls, st.Queries, st.Items, st.Saved)
	}
	return strings.TrimRight(sb.String(), "\n")
}
