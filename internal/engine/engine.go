// Package engine owns run orchestration for the analysis pipeline:
// worker-pool sizing, context cancellation, progress reporting and
// race-safe per-stage instrumentation. The dependency computation
// (internal/dep), the hybrid analysis (internal/hybrid), the
// experimental protocol (internal/exp) and the command-line binaries
// all thread an engine.Options through their entry points, so every
// later scaling change (sharded closure, cached cones, multi-backend
// solvers) plugs into one seam.
//
// All types are safe to use at their zero value: a zero Options runs
// with all CPUs, a background context, no progress output and no stats
// collection, and every method tolerates nil receivers where a stage
// or stats sink is absent.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures one analysis run. The zero value is a valid
// default configuration.
type Options struct {
	// Workers bounds the number of concurrent workers of parallel
	// stages (the SAT worker pool of the 1-cycle dependency
	// computation); <= 0 uses runtime.NumCPU().
	Workers int
	// Context cancels the run. Parallel stages honor cancellation
	// between SAT queries; sequential stages between iterations. A nil
	// Context means context.Background().
	Context context.Context
	// Progress, when non-nil, receives coarse human-readable progress
	// lines. It may be called from the goroutine driving a stage; it is
	// never called concurrently from pool workers.
	Progress func(format string, args ...any)
	// Stats, when non-nil, accumulates per-stage wall times and query
	// counts across the whole pipeline. All updates are race-safe, so
	// one Stats may be shared by concurrent analyses.
	Stats *Stats
}

// WorkerCount resolves the effective worker-pool size.
func (o Options) WorkerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

// Ctx resolves the run context, never nil.
func (o Options) Ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// Err reports the context's cancellation state.
func (o Options) Err() error { return o.Ctx().Err() }

// Logf emits one progress line if a Progress sink is configured.
func (o Options) Logf(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(format, args...)
	}
}

// Stage returns the named stage collector of the configured Stats, or
// nil when stats are not collected. The returned *StageStats tolerates
// nil receivers, so callers never need to branch.
func (o Options) Stage(name string) *StageStats {
	return o.Stats.Stage(name)
}

// Stats accumulates race-safe per-stage instrumentation of one or more
// pipeline runs. Stages are reported in first-use order.
type Stats struct {
	mu     sync.Mutex
	stages []*StageStats
	byName map[string]*StageStats
}

// NewStats returns an empty stats collector.
func NewStats() *Stats { return &Stats{} }

// Stage returns the collector of the named stage, creating it on first
// use. A nil *Stats returns nil (collection disabled).
func (s *Stats) Stage(name string) *StageStats {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.byName[name]; ok {
		return st
	}
	if s.byName == nil {
		s.byName = make(map[string]*StageStats)
	}
	st := &StageStats{Name: name}
	s.byName[name] = st
	s.stages = append(s.stages, st)
	return st
}

// StageStats collects one pipeline stage's wall time, invocation count,
// query count, work-item count and reuse count. All methods are atomic
// and tolerate nil receivers.
type StageStats struct {
	Name    string
	wall    atomic.Int64 // cumulative nanoseconds
	calls   atomic.Int64 // completed invocations
	queries atomic.Int64 // SAT queries / worklist evaluations
	items   atomic.Int64 // units of work processed (SCCs, candidates, rows)
	saved   atomic.Int64 // work units reused from a cache instead of recomputed
}

// Start begins timing one invocation and returns the function that
// ends it, adding the elapsed wall time.
func (st *StageStats) Start() func() {
	if st == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() {
		st.wall.Add(int64(time.Since(t0)))
		st.calls.Add(1)
	}
}

// AddQueries adds n to the stage's query counter.
func (st *StageStats) AddQueries(n int64) {
	if st != nil {
		st.queries.Add(n)
	}
}

// AddItems adds n to the stage's work-item counter (e.g. SCC components
// condensed, resolve candidates evaluated).
func (st *StageStats) AddItems(n int64) {
	if st != nil {
		st.items.Add(n)
	}
}

// AddSaved adds n to the stage's reuse counter: work units answered from
// a cached result (nodes whose attributes were reused from the parent
// network's fixed point) instead of recomputed.
func (st *StageStats) AddSaved(n int64) {
	if st != nil {
		st.saved.Add(n)
	}
}

// Wall returns the cumulative wall time.
func (st *StageStats) Wall() time.Duration {
	if st == nil {
		return 0
	}
	return time.Duration(st.wall.Load())
}

// Calls returns the number of completed invocations.
func (st *StageStats) Calls() int64 {
	if st == nil {
		return 0
	}
	return st.calls.Load()
}

// Queries returns the cumulative query count.
func (st *StageStats) Queries() int64 {
	if st == nil {
		return 0
	}
	return st.queries.Load()
}

// Items returns the cumulative work-item count.
func (st *StageStats) Items() int64 {
	if st == nil {
		return 0
	}
	return st.items.Load()
}

// Saved returns the cumulative reuse count.
func (st *StageStats) Saved() int64 {
	if st == nil {
		return 0
	}
	return st.saved.Load()
}

// StageSnapshot is one stage's totals at snapshot time.
type StageSnapshot struct {
	Name    string
	Wall    time.Duration
	Calls   int64
	Queries int64
	Items   int64
	Saved   int64
}

// Snapshot returns the per-stage totals in first-use order.
func (s *Stats) Snapshot() []StageSnapshot {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	stages := append([]*StageStats(nil), s.stages...)
	s.mu.Unlock()
	out := make([]StageSnapshot, len(stages))
	for i, st := range stages {
		out[i] = StageSnapshot{
			Name: st.Name, Wall: st.Wall(), Calls: st.Calls(),
			Queries: st.Queries(), Items: st.Items(), Saved: st.Saved(),
		}
	}
	return out
}

// String renders the per-stage totals as an aligned table.
func (s *Stats) String() string {
	snap := s.Snapshot()
	if len(snap) == 0 {
		return "engine: no stages recorded"
	}
	nameW := len("stage")
	for _, st := range snap {
		if len(st.Name) > nameW {
			nameW = len(st.Name)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-*s  %12s  %8s  %10s  %8s  %8s\n",
		nameW, "stage", "wall", "calls", "queries", "items", "saved")
	for _, st := range snap {
		fmt.Fprintf(&sb, "%-*s  %12s  %8d  %10d  %8d  %8d\n", nameW, st.Name,
			st.Wall.Round(time.Microsecond), st.Calls, st.Queries, st.Items, st.Saved)
	}
	return strings.TrimRight(sb.String(), "\n")
}
