package verify

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/paperex"
	"repro/internal/secspec"
)

func TestRunningExampleInsecure(t *testing.T) {
	e := paperex.New()
	res := Check(e.Network, e.Circuit, e.Spec)
	if res.Secure {
		t.Fatal("the insecure running example must fail verification")
	}
	found := false
	for _, f := range res.Counterexamples {
		if f.Src == e.Crypto && f.Dst == e.Untrusted {
			found = true
			if !f.UsesScanWiring {
				t.Error("the crypto->untrusted flow must use reconfigurable wiring")
			}
			if len(f.Path) < 3 {
				t.Errorf("counterexample path too short: %v", f.Path)
			}
			if f.String() == "" {
				t.Error("empty rendering")
			}
		}
	}
	if !found {
		t.Fatalf("crypto->untrusted flow missing: %v", res.Counterexamples)
	}
	if res.ExhaustiveChecks == 0 {
		t.Error("small cones should be checked exhaustively")
	}
}

func TestRunningExampleSecuredPassesVerification(t *testing.T) {
	e := paperex.New()
	rep, err := core.Secure(e.Network, e.Circuit, e.Internal, e.Spec, core.Options{Mode: dep.Exact})
	if err != nil || !rep.Secured {
		t.Fatalf("secure failed: %v", err)
	}
	res := Check(e.Network, e.Circuit, e.Spec)
	if !res.Secure {
		for _, f := range res.Counterexamples {
			t.Errorf("counterexample: %v", f)
		}
		t.Fatal("secured network failed independent verification")
	}
}

// TestCrossValidationFuzz secures random networks and confirms with the
// independent checker; it also confirms agreement on the insecure
// originals.
func TestCrossValidationFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	secured, confirmedInsecure := 0, 0
	for iter := 0; iter < 20; iter++ {
		nw := bench.RandomNetwork(rng, 4+rng.Intn(6))
		att := bench.AttachCircuit(nw, bench.DefaultCircuitConfig(), rng.Int63())
		spec := secspec.GenerateWithRoles(len(nw.Modules), att.DataSources, secspec.DefaultGenConfig(), rng.Int63())

		pre := Check(nw, att.Circuit, spec)
		rep, err := core.Secure(nw, att.Circuit, att.Internal, spec, core.Options{Mode: dep.Exact})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if rep.InsecureLogic {
			// The independent checker must also find a flow, and one
			// not using scan wiring (within a fixed-infrastructure
			// reachability or circuit-only path).
			if pre.Secure {
				t.Fatalf("iter %d: analysis says insecure logic, verifier says secure", iter)
			}
			continue
		}
		if rep.ViolatingRegsBefore > 0 && pre.Secure {
			// The analysis found violations the checker cannot see only
			// if they involve bridged internals — which the checker
			// covers too, so this must not happen.
			t.Fatalf("iter %d: analysis found violations, verifier none", iter)
		}
		if !pre.Secure {
			confirmedInsecure++
		}
		post := Check(nw, att.Circuit, spec)
		if !post.Secure {
			var sb strings.Builder
			for _, f := range post.Counterexamples {
				sb.WriteString(f.String() + "\n")
			}
			t.Fatalf("iter %d: secured network failed verification:\n%s", iter, sb.String())
		}
		secured++
	}
	if secured < 8 || confirmedInsecure < 3 {
		t.Fatalf("weak coverage: %d secured, %d confirmed insecure", secured, confirmedInsecure)
	}
}

func TestInsecureLogicAgreement(t *testing.T) {
	e := paperex.New()
	// Circuit-only leak.
	e.Circuit.SetFFInput(e.F[6], e.Circuit.FFs[e.F[1]].Node)
	res := Check(e.Network, e.Circuit, e.Spec)
	if res.Secure {
		t.Fatal("verifier must find the circuit-only leak")
	}
	found := false
	for _, f := range res.Counterexamples {
		if f.Src == e.Crypto && f.Dst == e.Untrusted && !f.UsesScanWiring {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a wiring-free crypto->untrusted flow: %v", res.Counterexamples)
	}
}

func TestSecureSpecTriviallyPasses(t *testing.T) {
	e := paperex.New()
	spec := secspec.New(len(e.Circuit.Modules), 4) // unrestricted
	res := Check(e.Network, e.Circuit, spec)
	if !res.Secure || len(res.Counterexamples) != 0 {
		t.Fatal("unrestricted spec cannot be violated")
	}
}

func TestBruteFunctionalMatchesSAT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 15; iter++ {
		g := bench.RandomNetwork(rng, 3)
		att := bench.AttachCircuit(g, bench.DefaultCircuitConfig(), rng.Int63())
		n := att.Circuit
		for b := 0; b < n.NumFFs(); b++ {
			root := n.FFs[b].D
			_, leaves := n.Cone(root)
			if len(leaves) > maxExhaustiveLeaves {
				continue
			}
			for _, a := range n.SupportFFs(root) {
				brute := bruteFunctional(n, root, n.FFs[a].Node, leaves)
				satr := dep.FunctionalDepends(n, root, n.FFs[a].Node)
				if brute != satr {
					t.Fatalf("iter %d: brute=%v sat=%v for ff %d on %d", iter, brute, satr, b, a)
				}
			}
		}
	}
}
