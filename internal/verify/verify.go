// Package verify independently checks whether a scan network over a
// circuit satisfies a security specification. It is deliberately a
// second, simpler implementation than the analysis pipeline — direct
// breadth-first reachability over an explicit functional-flow edge
// list, with no bridging, no multi-cycle closure and no attribute
// masks — so the two can cross-validate each other (the role
// specification-and-verification plays in Kochte et al., ETS 2017).
//
// Functional 1-cycle edges are established by exhaustive cone
// enumeration when the cone is small and by the SAT cofactor check
// otherwise; internal flip-flops participate as ordinary graph nodes.
package verify

import (
	"fmt"

	"repro/internal/dep"
	"repro/internal/netlist"
	"repro/internal/rsn"
	"repro/internal/secspec"
)

// Flow is a counterexample: a functional data path from a flip-flop of
// module Src to one of module Dst although Violates(Src, Dst).
type Flow struct {
	Src, Dst       int // module indices
	Path           []string
	UsesScanWiring bool
}

func (f Flow) String() string {
	out := fmt.Sprintf("module %d -> module %d:", f.Src, f.Dst)
	for i, p := range f.Path {
		if i > 0 {
			out += " ->"
		}
		out += " " + p
	}
	return out
}

// Result reports the outcome of one verification.
type Result struct {
	Secure bool
	// Counterexamples holds one flow per violating module pair.
	Counterexamples []Flow
	// Edges is the size of the constructed flow graph.
	Edges int
	// ExhaustiveChecks and SATChecks count how 1-cycle edges were
	// classified.
	ExhaustiveChecks, SATChecks int
}

// maxExhaustiveLeaves bounds the cone size for exhaustive enumeration.
const maxExhaustiveLeaves = 12

// node ids: 0..C-1 circuit FFs; C..C+S-1 scan FFs; then muxes.
type graph struct {
	nw       *rsn.Network
	n        *netlist.Netlist
	nCirc    int
	regOff   []int
	nScan    int
	muxOff   int
	total    int
	adj      [][]int32
	module   []int // -1 for mux nodes
	name     []string
	scanEdge map[int64]bool // encoded src<<32|dst for wiring edges
}

func buildGraph(nw *rsn.Network, n *netlist.Netlist, res *Result) *graph {
	g := &graph{nw: nw, n: n, nCirc: n.NumFFs()}
	g.regOff = make([]int, len(nw.Registers))
	idx := g.nCirc
	for r := range nw.Registers {
		g.regOff[r] = idx
		idx += nw.Registers[r].Len
	}
	g.nScan = idx - g.nCirc
	g.muxOff = idx
	g.total = idx + len(nw.Muxes)
	g.adj = make([][]int32, g.total)
	g.module = make([]int, g.total)
	g.name = make([]string, g.total)
	g.scanEdge = map[int64]bool{}
	for f := 0; f < g.nCirc; f++ {
		g.module[f] = n.FFs[f].Module
		g.name[f] = n.FFs[f].Name
	}
	for r := range nw.Registers {
		for b := 0; b < nw.Registers[r].Len; b++ {
			i := g.regOff[r] + b
			g.module[i] = nw.Registers[r].Module
			g.name[i] = fmt.Sprintf("%s.SF%d", nw.Registers[r].Name, b)
		}
	}
	for m := range nw.Muxes {
		g.module[g.muxOff+m] = -1
		g.name[g.muxOff+m] = nw.Muxes[m].Name
	}

	addEdge := func(from, to int, wiring bool) {
		g.adj[from] = append(g.adj[from], int32(to))
		if wiring {
			g.scanEdge[int64(from)<<32|int64(to)] = true
		}
		res.Edges++
	}

	// Circuit edges: exhaustively or SAT-checked functional 1-cycle
	// dependencies, internal flip-flops included. The cone is extracted
	// and (for the SAT path) encoded once per root via a ConeQuerier;
	// every leaf query reuses it instead of re-walking the netlist.
	for b := range n.FFs {
		root := n.FFs[b].D
		if root == netlist.NoNode {
			continue
		}
		q := dep.NewConeQuerier(n, root)
		leaves := q.Leaves()
		free := 0
		for _, l := range leaves {
			if k := n.Nodes[l].Kind; k != netlist.KindConst0 && k != netlist.KindConst1 {
				free++
			}
		}
		for _, a := range q.SupportFFs() {
			var functional bool
			if free <= maxExhaustiveLeaves {
				res.ExhaustiveChecks++
				functional = bruteFunctional(n, root, n.FFs[a].Node, leaves)
			} else {
				res.SATChecks++
				functional = q.Depends(n.FFs[a].Node)
			}
			if functional {
				addEdge(int(a), b, false)
			}
		}
	}
	// Register chains (shift) and capture/update links.
	for r := range nw.Registers {
		reg := &nw.Registers[r]
		for b := 0; b < reg.Len; b++ {
			i := g.regOff[r] + b
			if b+1 < reg.Len {
				addEdge(i, i+1, false)
			}
			if c := reg.Capture[b]; c != netlist.NoFF {
				addEdge(int(c), i, false)
			}
			if u := reg.Update[b]; u != netlist.NoFF {
				addEdge(i, int(u), false)
			}
		}
	}
	// Reconfigurable wiring through transparent mux nodes.
	srcNode := func(ref rsn.Ref) int {
		switch ref.Kind {
		case rsn.KRegister:
			return g.regOff[ref.ID] + nw.Registers[ref.ID].Len - 1
		case rsn.KMux:
			return g.muxOff + int(ref.ID)
		}
		return -1
	}
	for r := range nw.Registers {
		if s := srcNode(nw.Registers[r].In); s >= 0 {
			addEdge(s, g.regOff[r], true)
		}
	}
	for m := range nw.Muxes {
		for _, in := range nw.Muxes[m].Inputs {
			if s := srcNode(in); s >= 0 {
				addEdge(s, g.muxOff+m, true)
			}
		}
	}
	return g
}

// bruteFunctional enumerates all assignments of the cone's free leaves.
// leaves is root's cone leaf list, extracted once by the caller.
func bruteFunctional(n *netlist.Netlist, root, leaf netlist.NodeID, leaves []netlist.NodeID) bool {
	var free []netlist.NodeID
	found := false
	for _, l := range leaves {
		if l == leaf {
			found = true
			continue
		}
		if k := n.Nodes[l].Kind; k == netlist.KindConst0 || k == netlist.KindConst1 {
			continue
		}
		free = append(free, l)
	}
	if !found {
		return false
	}
	asg := make(map[netlist.NodeID]bool, len(free)+1)
	var eval func(id netlist.NodeID) bool
	eval = func(id netlist.NodeID) bool {
		if v, ok := asg[id]; ok {
			return v
		}
		nd := &n.Nodes[id]
		switch nd.Kind {
		case netlist.KindConst0:
			return false
		case netlist.KindConst1:
			return true
		case netlist.KindGate:
			in := make([]bool, len(nd.Fanin))
			for i, f := range nd.Fanin {
				in[i] = eval(f)
			}
			return netlist.EvalGate(nd.Gate, in)
		}
		return false // unreachable: leaves are assigned
	}
	for m := 0; m < 1<<uint(len(free)); m++ {
		for i, l := range free {
			asg[l] = m>>uint(i)&1 == 1
		}
		asg[leaf] = false
		v0 := eval(root)
		asg[leaf] = true
		v1 := eval(root)
		if v0 != v1 {
			return true
		}
	}
	return false
}

// Check verifies the network against the specification and returns one
// counterexample flow per violating module pair.
func Check(nw *rsn.Network, circuit *netlist.Netlist, spec *secspec.Spec) *Result {
	res := &Result{Secure: true}
	g := buildGraph(nw, circuit, res)

	// For each module, BFS from all its flip-flop nodes at once.
	for src := 0; src < spec.NumModules(); src++ {
		// Which destination modules matter?
		anyViolating := false
		for dst := 0; dst < spec.NumModules(); dst++ {
			if spec.Violates(src, dst) {
				anyViolating = true
				break
			}
		}
		if !anyViolating {
			continue
		}
		parent := make([]int32, g.total)
		for i := range parent {
			parent[i] = -2 // unvisited
		}
		var queue []int32
		for i := 0; i < g.muxOff; i++ {
			if g.module[i] == src {
				parent[i] = -1
				queue = append(queue, int32(i))
			}
		}
		reported := map[int]bool{}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			if mod := g.module[cur]; mod >= 0 && mod != src && spec.Violates(src, mod) && !reported[mod] {
				reported[mod] = true
				res.Secure = false
				res.Counterexamples = append(res.Counterexamples, g.flow(src, mod, parent, cur))
			}
			for _, next := range g.adj[cur] {
				if parent[next] == -2 {
					parent[next] = cur
					queue = append(queue, next)
				}
			}
		}
	}
	return res
}

// flow reconstructs the path to a counterexample node.
func (g *graph) flow(src, dst int, parent []int32, end int32) Flow {
	var rev []int32
	for n := end; n >= 0; n = parent[n] {
		rev = append(rev, n)
	}
	f := Flow{Src: src, Dst: dst}
	for i := len(rev) - 1; i >= 0; i-- {
		n := rev[i]
		f.Path = append(f.Path, g.name[n])
		if i > 0 {
			if g.scanEdge[int64(rev[i])<<32|int64(rev[i-1])] {
				f.UsesScanWiring = true
			}
		}
	}
	return f
}
