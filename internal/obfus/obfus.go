// Package obfus models key-gated scan obfuscation and the attacks that
// break it. It is the dual-use counterpart of the paper's defensive
// analysis: the rsn package gains key-gated primitives (rsn.Obfuscation)
// and this package answers whether they actually withstand the known
// oracle-guided attacks.
//
// Two attackers are implemented:
//
//   - KeyRecovery, a ScanSAT-style SAT attack: the keyed shift
//     behavior is unrolled into CNF twice (two key copies sharing the
//     configuration and scan-in stream), and distinguishing input
//     patterns are iteratively refined against a simulation oracle
//     until the remaining key space is observationally collapsed or a
//     budget is hit.
//
//   - FlushAttack, a GF(2) algebraic flush attack: flush responses are
//     linear in the key bits of XOR gates (even under a dynamic LFSR
//     schedule, which is itself linear), so key bits fall to plain
//     rank analysis over the flush response matrix — no SAT involved.
//
// BruteForce enumerates the key space outright and is the ground truth
// the SAT attack is differentially tested against: both recover the
// smallest key observationally equivalent to the true key within the
// same horizon, so their answers must be bit-identical.
package obfus

import (
	"fmt"

	"repro/internal/rsn"
)

// DefaultMaxConfigs bounds exhaustive configuration enumeration during
// equivalence checks and flush probing.
const DefaultMaxConfigs = 256

// DefaultHorizon returns the default observation window for a network:
// twice the scan length (enough for any bit to traverse the longest
// path and emerge) plus slack, capped to keep unrolled CNFs bounded.
func DefaultHorizon(nw *rsn.Network) int {
	h := 2*nw.NumScanFFs() + 2
	if h > 256 {
		h = 256
	}
	if h < 8 {
		h = 8
	}
	return h
}

// enumConfigs enumerates attacker-visible configurations in mixed-radix
// counting order (mux 0 the fastest digit), at most max of them. The
// second result reports whether the space was truncated.
func enumConfigs(nw *rsn.Network, max int) ([]rsn.Config, bool) {
	if max < 1 {
		max = 1
	}
	cfgs := []rsn.Config{nw.NewConfig()}
	for {
		last := cfgs[len(cfgs)-1]
		next := make(rsn.Config, len(last))
		copy(next, last)
		carry := true
		for m := 0; m < len(next) && carry; m++ {
			next[m]++
			if next[m] < len(nw.Muxes[m].Inputs) {
				carry = false
			} else {
				next[m] = 0
			}
		}
		if carry || len(next) == 0 {
			return cfgs, false
		}
		if len(cfgs) == max {
			return cfgs, true
		}
		cfgs = append(cfgs, next)
	}
}

// laneSim shifts up to 64 independent scan-in streams ("lanes") through
// a keyed network at once, one uint64 word per scan cell. The key and
// the configuration are shared across lanes — both are data-independent,
// so the active path and the key schedule are common to all lanes and
// the whole shift semantics vectorizes bitwise. Semantics mirror
// rsn.KeyedSimulator exactly.
type laneSim struct {
	nw      *rsn.Network
	ov      *rsn.Obfuscation
	state   [][]uint64
	ks      []bool
	regGate []int // per register: gating key bit or -1
	muxGate []int // per mux: gating key bit or -1
}

func newLaneSim(nw *rsn.Network, ov *rsn.Obfuscation, key []bool) *laneSim {
	s := &laneSim{
		nw:      nw,
		ov:      ov,
		state:   make([][]uint64, len(nw.Registers)),
		ks:      append([]bool(nil), key...),
		regGate: make([]int, len(nw.Registers)),
		muxGate: make([]int, len(nw.Muxes)),
	}
	for i := range s.state {
		s.state[i] = make([]uint64, nw.Registers[i].Len)
	}
	for i := range s.regGate {
		s.regGate[i] = -1
	}
	for i := range s.muxGate {
		s.muxGate[i] = -1
	}
	for _, g := range ov.Gates {
		switch g.Kind {
		case rsn.KeyXOR:
			s.regGate[g.Elem] = g.Bit
		case rsn.KeyMux:
			s.muxGate[g.Elem] = g.Bit
		}
	}
	return s
}

// path resolves the active path under the current key state.
func (s *laneSim) path(cfg rsn.Config) ([]rsn.PathElement, error) {
	eff := make(rsn.Config, len(s.nw.Muxes))
	for m := range s.nw.Muxes {
		sel := 0
		if m < len(cfg) {
			sel = cfg[m]
		}
		if b := s.muxGate[m]; b >= 0 && s.ks[b] {
			sel ^= 1
		}
		eff[m] = sel
	}
	return s.nw.ActivePath(eff)
}

// shiftAlong runs one shift cycle along a pre-resolved path and
// advances the key schedule.
func (s *laneSim) shiftAlong(path []rsn.PathElement, in uint64) uint64 {
	var out uint64
	if len(path) == 0 {
		out = in
	} else {
		last := path[len(path)-1]
		out = s.state[last.Register][last.FF]
		if b := s.regGate[last.Register]; b >= 0 && s.ks[b] {
			out = ^out
		}
		for k := len(path) - 1; k >= 1; k-- {
			prev := path[k-1]
			v := s.state[prev.Register][prev.FF]
			if prev.Register != path[k].Register {
				if b := s.regGate[prev.Register]; b >= 0 && s.ks[b] {
					v = ^v
				}
			}
			s.state[path[k].Register][path[k].FF] = v
		}
		s.state[path[0].Register][path[0].FF] = in
	}
	s.ks = s.ov.NextKeyState(s.ks)
	return out
}

// respond runs len(ins) shift cycles from the all-zero state and
// returns the scan-out words. For static schedules the path is
// resolved once; dynamic schedules re-resolve it every cycle, since
// gated mux selects track the LFSR.
func respond(nw *rsn.Network, ov *rsn.Obfuscation, key []bool, cfg rsn.Config, ins []uint64) ([]uint64, error) {
	s := newLaneSim(nw, ov, key)
	outs := make([]uint64, len(ins))
	var fixed []rsn.PathElement
	static := !ov.Dynamic
	if static {
		p, err := s.path(cfg)
		if err != nil {
			return nil, err
		}
		fixed = p
	}
	for t, in := range ins {
		p := fixed
		if !static {
			var err error
			p, err = s.path(cfg)
			if err != nil {
				return nil, err
			}
		}
		outs[t] = s.shiftAlong(p, in)
	}
	return outs, nil
}

// basisChunk fills the input words for basis streams [s0, s0+lanes):
// stream 0 is all-zero, stream j >= 1 is the one-hot impulse at cycle
// j-1. Because the shift data path is affine in the scan-in stream for
// any fixed key and configuration, agreement on these T+1 streams
// implies agreement on every stream of length T.
func basisChunk(T, s0, lanes int) []uint64 {
	ins := make([]uint64, T)
	for l := 0; l < lanes; l++ {
		j := s0 + l
		if j >= 1 && j-1 < T {
			ins[j-1] |= 1 << l
		}
	}
	return ins
}

// equivalent reports whether keys a and b are observationally
// equivalent within horizon T: identical scan-out streams for every
// enumerated configuration and every scan-in stream of length T.
func equivalent(nw *rsn.Network, ov *rsn.Obfuscation, a, b []bool, cfgs []rsn.Config, T int) (bool, error) {
	streams := T + 1
	for _, cfg := range cfgs {
		for s0 := 0; s0 < streams; s0 += 64 {
			lanes := streams - s0
			if lanes > 64 {
				lanes = 64
			}
			ins := basisChunk(T, s0, lanes)
			ra, err := respond(nw, ov, a, cfg, ins)
			if err != nil {
				return false, err
			}
			rb, err := respond(nw, ov, b, cfg, ins)
			if err != nil {
				return false, err
			}
			mask := ^uint64(0)
			if lanes < 64 {
				mask = 1<<lanes - 1
			}
			for t := range ra {
				if (ra[t]^rb[t])&mask != 0 {
					return false, nil
				}
			}
		}
	}
	return true, nil
}

// keyOfUint expands the low n bits of v into a key.
func keyOfUint(v uint64, n int) []bool {
	key := make([]bool, n)
	for i := range key {
		key[i] = v&(1<<i) != 0
	}
	return key
}

// uintOfKey packs key bits into an integer (bit i at weight 2^i).
func uintOfKey(key []bool) uint64 {
	var v uint64
	for i, b := range key {
		if b {
			v |= 1 << i
		}
	}
	return v
}

// checkAttackable validates the network/overlay pair for attack runs.
func checkAttackable(nw *rsn.Network, ov *rsn.Obfuscation) error {
	if err := nw.Validate(); err != nil {
		return err
	}
	if err := ov.Validate(nw); err != nil {
		return err
	}
	if !nw.OutSrc.IsValid() {
		return fmt.Errorf("obfus: network has no scan-out")
	}
	return nil
}
