package obfus

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/rsn"
)

// MaxBruteForceBits caps brute-force key enumeration; beyond this the
// 2^n sweep stops being a test oracle and starts being a space heater.
const MaxBruteForceBits = 20

// BruteForceOptions bounds a brute-force enumeration run.
type BruteForceOptions struct {
	// Horizon is the observation window in shift cycles (0 = the
	// network's DefaultHorizon). Must match the SAT attack's horizon
	// for differential comparison.
	Horizon int
	// Workers is the enumeration parallelism (0 = 1). The result is
	// identical for any worker count: workers scan disjoint ranges and
	// the merge keeps the global minimum.
	Workers int
	// MaxConfigs bounds configuration enumeration (0 = DefaultMaxConfigs).
	MaxConfigs int
}

// BruteForceResult reports an exhaustive key-space enumeration.
type BruteForceResult struct {
	// Key is the smallest key observationally equivalent to the true
	// key within the horizon.
	Key []bool
	// EquivalentKeys counts keys in the true key's equivalence class
	// (at least 1: the true key itself).
	EquivalentKeys int
	Horizon        int
	Configs        int
	// TruncatedConfigs reports that the configuration space was larger
	// than MaxConfigs and only a prefix was checked.
	TruncatedConfigs bool
}

// BruteForce enumerates every key and returns the smallest one
// observationally equivalent to the true key — the ground truth the
// SAT attack is differentially tested against.
func BruteForce(ctx context.Context, nw *rsn.Network, ov *rsn.Obfuscation, trueKey []bool, opts BruteForceOptions) (*BruteForceResult, error) {
	if err := checkAttackable(nw, ov); err != nil {
		return nil, err
	}
	n := ov.NumKeyBits
	if n > MaxBruteForceBits {
		return nil, fmt.Errorf("obfus: brute force over %d key bits exceeds the %d-bit cap", n, MaxBruteForceBits)
	}
	if len(trueKey) != n {
		return nil, fmt.Errorf("obfus: true key has %d bits, overlay wants %d", len(trueKey), n)
	}
	horizon := opts.Horizon
	if horizon <= 0 {
		horizon = DefaultHorizon(nw)
	}
	maxCfgs := opts.MaxConfigs
	if maxCfgs <= 0 {
		maxCfgs = DefaultMaxConfigs
	}
	cfgs, truncated := enumConfigs(nw, maxCfgs)
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	total := uint64(1) << n
	if uint64(workers) > total {
		workers = int(total)
	}

	type local struct {
		min   uint64 // smallest equivalent key in the worker's range
		found bool
		count int
		err   error
	}
	locals := make([]local, workers)
	var wg sync.WaitGroup
	chunk := total / uint64(workers)
	for w := 0; w < workers; w++ {
		lo := uint64(w) * chunk
		hi := lo + chunk
		if w == workers-1 {
			hi = total
		}
		wg.Add(1)
		go func(w int, lo, hi uint64) {
			defer wg.Done()
			l := &locals[w]
			for v := lo; v < hi; v++ {
				if v%256 == 0 && ctx.Err() != nil {
					l.err = ctx.Err()
					return
				}
				eq, err := equivalent(nw, ov, keyOfUint(v, n), trueKey, cfgs, horizon)
				if err != nil {
					l.err = err
					return
				}
				if eq {
					l.count++
					if !l.found {
						l.found = true
						l.min = v
					}
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()

	res := &BruteForceResult{Horizon: horizon, Configs: len(cfgs), TruncatedConfigs: truncated}
	best := total // sentinel above every key
	for w := range locals {
		if locals[w].err != nil {
			return nil, locals[w].err
		}
		res.EquivalentKeys += locals[w].count
		if locals[w].found && locals[w].min < best {
			best = locals[w].min
		}
	}
	if best == total {
		return nil, fmt.Errorf("obfus: brute force found no equivalent key (the true key must be one)")
	}
	res.Key = keyOfUint(best, n)
	return res, nil
}
