package obfus

import (
	"fmt"
	"sort"

	"repro/internal/rsn"
)

// The flush attack exploits linearity: for a fixed configuration the
// scan data path is affine in the scan-in stream and the key, so flush
// responses (all-zero scan-in from the all-zero state) are GF(2)
// linear functions of the key bits behind XOR gates — even under a
// dynamic schedule, because the LFSR itself is linear. Key-gated mux
// selects are not linear, but they leak through timing instead: the
// impulse-response delay of a configuration equals its active path
// length, which pins the effective select when the two branch lengths
// differ. The attack therefore builds a linear system from
//
//   - delay probes: mux-gate key bits whose value is the same in every
//     delay-consistent select hypothesis, and
//   - parity probes: flush response bits as XOR-gate key-bit parities,
//     emitted when every delay-consistent hypothesis predicts the same
//     coefficients,
//
// and reports its rank and the uniquely determined key bits. Dynamic
// schedules defeat the delay probe (the active path changes mid-shift
// with the LFSR state), so overlays combining dynamic schedules with
// key muxes are reported as out of the flush attack's reach — that
// combination is exactly why DynUnlock-style defenses exist, and it is
// what the SAT attack is for.

// FlushOptions bounds a flush-attack run.
type FlushOptions struct {
	// Horizon is the flush observation window (0 = DefaultHorizon).
	Horizon int
	// MaxConfigs bounds probe configurations (0 = DefaultMaxConfigs).
	MaxConfigs int
	// MaxMuxHypotheses bounds the enumeration of gated-mux select
	// hypotheses per probe (0 = 4096).
	MaxMuxHypotheses int
}

// FlushResult reports a GF(2) flush-attack run.
type FlushResult struct {
	// Applicable is false when the overlay is structurally out of the
	// attack's reach (dynamic key muxes); Reason says why.
	Applicable bool
	Reason     string
	Probes     int
	// AmbiguousProbes counts configurations whose delay-consistent
	// hypotheses disagreed on the parity coefficients, contributing
	// delay rows only (or nothing).
	AmbiguousProbes int
	Equations       int
	Rank            int
	// RecoveredBits lists key bit indices uniquely determined by the
	// linear system, RecoveredKey their values (false elsewhere).
	RecoveredBits []int
	RecoveredKey  []bool
	// Correct reports that every recovered bit matches the true key
	// (the defender's check; always expected to hold).
	Correct          bool
	Horizon          int
	TruncatedConfigs bool
}

// FlushAttack runs the GF(2) flush analysis against an overlay,
// querying a simulation oracle holding the true key.
func FlushAttack(nw *rsn.Network, ov *rsn.Obfuscation, trueKey []bool, opts FlushOptions) (*FlushResult, error) {
	if err := checkAttackable(nw, ov); err != nil {
		return nil, err
	}
	if len(trueKey) != ov.NumKeyBits {
		return nil, fmt.Errorf("obfus: true key has %d bits, overlay wants %d", len(trueKey), ov.NumKeyBits)
	}
	horizon := opts.Horizon
	if horizon <= 0 {
		horizon = DefaultHorizon(nw)
	}
	maxCfgs := opts.MaxConfigs
	if maxCfgs <= 0 {
		maxCfgs = DefaultMaxConfigs
	}
	maxHyp := opts.MaxMuxHypotheses
	if maxHyp <= 0 {
		maxHyp = 4096
	}
	n := ov.NumKeyBits
	res := &FlushResult{Applicable: true, Horizon: horizon, RecoveredKey: make([]bool, n)}

	muxBits := ov.MuxGateBits()
	if ov.Dynamic && len(muxBits) > 0 {
		res.Applicable = false
		res.Reason = "dynamic key schedule drives mux selects; the active path changes mid-shift and neither delay nor parity probes are sound"
		res.Correct = true
		return res, nil
	}
	if len(muxBits) > 0 && 1<<uint(len(muxBits)) > maxHyp {
		res.Applicable = false
		res.Reason = fmt.Sprintf("%d mux-gate key bits exceed the hypothesis budget", len(muxBits))
		res.Correct = true
		return res, nil
	}

	cfgs, truncated := enumConfigs(nw, maxCfgs)
	res.TruncatedConfigs = truncated
	sys := newGF2System(n)

	for _, cfg := range cfgs {
		res.Probes++
		// Oracle: lane 0 flushes zeros, lane 1 sends the impulse.
		ins := make([]uint64, horizon)
		if horizon > 0 {
			ins[0] = 2
		}
		outs, err := respond(nw, ov, trueKey, cfg, ins)
		if err != nil {
			return nil, err
		}
		obsDelay := horizon
		for t, w := range outs {
			if (w^(w>>1))&1 != 0 {
				obsDelay = t
				break
			}
		}
		// Enumerate gated-mux select hypotheses and keep the
		// delay-consistent ones.
		var consistent []hypothesis
		for h := 0; h < 1<<uint(len(muxBits)); h++ {
			hyp, err := resolveHypothesis(nw, ov, cfg, muxBits, uint64(h), horizon)
			if err != nil {
				return nil, err
			}
			if hyp.delay == obsDelay {
				consistent = append(consistent, hyp)
			}
		}
		if len(consistent) == 0 {
			// The observed delay matches no hypothesis; the probe
			// carries no sound equation.
			res.AmbiguousProbes++
			continue
		}
		// Mux bits with consensus across the surviving hypotheses are
		// pinned outright.
		for i, b := range muxBits {
			v := consistent[0].muxVal(i)
			agree := true
			for _, hyp := range consistent[1:] {
				if hyp.muxVal(i) != v {
					agree = false
					break
				}
			}
			if agree {
				row := newVec(n + 1)
				row.set(b)
				if v {
					row.set(n)
				}
				sys.add(row)
				res.Equations++
			}
		}
		// Parity rows are sound only when every surviving hypothesis
		// predicts the same coefficients.
		rows := affineFlushRows(nw, ov, consistent[0].path, horizon)
		agree := true
		for _, hyp := range consistent[1:] {
			other := affineFlushRows(nw, ov, hyp.path, horizon)
			for t := range rows {
				if !rows[t].equal(other[t]) {
					agree = false
					break
				}
			}
			if !agree {
				break
			}
		}
		if !agree {
			res.AmbiguousProbes++
			continue
		}
		for t, row := range rows {
			if row.zero() {
				continue
			}
			r := row.clone(n + 1)
			if outs[t]&1 != 0 {
				r.set(n)
			}
			sys.add(r)
			res.Equations++
		}
	}

	res.Rank = sys.rank()
	res.Correct = true
	for j := 0; j < n; j++ {
		ok, v := sys.determined(j)
		if !ok {
			continue
		}
		res.RecoveredBits = append(res.RecoveredBits, j)
		res.RecoveredKey[j] = v
		if v != trueKey[j] {
			res.Correct = false
		}
	}
	sort.Ints(res.RecoveredBits)
	return res, nil
}

// hypothesis is one assignment of the gated muxes' key bits together
// with the active path and delay it predicts for a probe config.
type hypothesis struct {
	bits  uint64
	path  []rsn.PathElement
	delay int // len(path), saturated at the horizon
}

func (h hypothesis) muxVal(i int) bool { return h.bits&(1<<uint(i)) != 0 }

func resolveHypothesis(nw *rsn.Network, ov *rsn.Obfuscation, cfg rsn.Config, muxBits []int, bits uint64, horizon int) (hypothesis, error) {
	ks := make([]bool, ov.NumKeyBits)
	for i, b := range muxBits {
		ks[b] = bits&(1<<uint(i)) != 0
	}
	eff := ov.EffectiveConfig(nw, cfg, ks)
	path, err := nw.ActivePath(eff)
	if err != nil {
		return hypothesis{}, err
	}
	d := len(path)
	if d > horizon {
		d = horizon
	}
	return hypothesis{bits: bits, path: path, delay: d}, nil
}

// affineFlushRows computes, for a fixed active path, the flush
// response bits as GF(2) vectors over the key: row t says which key
// bits XOR into scan-out cycle t when zeros are flushed from the
// all-zero state. The key-state expansion evolves through the LFSR for
// dynamic schedules (the LFSR is linear, so every cycle's state bits
// stay linear combinations of the initial key).
func affineFlushRows(nw *rsn.Network, ov *rsn.Obfuscation, path []rsn.PathElement, horizon int) []vec {
	n := ov.NumKeyBits
	regGate := make([]int, len(nw.Registers))
	for i := range regGate {
		regGate[i] = -1
	}
	for _, g := range ov.Gates {
		if g.Kind == rsn.KeyXOR {
			regGate[g.Elem] = g.Bit
		}
	}
	// ksv[i] expands key-state bit i over the initial key bits.
	ksv := make([]vec, n)
	for i := range ksv {
		ksv[i] = newVec(n)
		ksv[i].set(i)
	}
	cells := make([]vec, len(path))
	for i := range cells {
		cells[i] = newVec(n)
	}
	rows := make([]vec, horizon)
	for t := 0; t < horizon; t++ {
		row := newVec(n)
		if len(path) > 0 {
			last := path[len(path)-1]
			row.xorIn(cells[len(path)-1])
			if b := regGate[last.Register]; b >= 0 {
				row.xorIn(ksv[b])
			}
			for k := len(path) - 1; k >= 1; k-- {
				prev := path[k-1]
				v := cells[k-1].clone(n)
				if prev.Register != path[k].Register {
					if b := regGate[prev.Register]; b >= 0 {
						v.xorIn(ksv[b])
					}
				}
				cells[k] = v
			}
			cells[0] = newVec(n) // scan-in is the zero flush stream
		}
		rows[t] = row
		if ov.Dynamic {
			fb := newVec(n)
			for _, tp := range ov.Taps {
				fb.xorIn(ksv[tp])
			}
			copy(ksv, ksv[1:])
			ksv[n-1] = fb
		}
	}
	return rows
}

// vec is a GF(2) row vector over key bits (plus, in augmented use, a
// right-hand-side bit).
type vec []uint64

func newVec(bits int) vec { return make(vec, (bits+63)/64) }

func (v vec) set(i int)      { v[i/64] |= 1 << uint(i%64) }
func (v vec) bit(i int) bool { return v[i/64]&(1<<uint(i%64)) != 0 }

func (v vec) xorIn(w vec) {
	for i := range w {
		v[i] ^= w[i]
	}
}

func (v vec) zero() bool {
	for _, w := range v {
		if w != 0 {
			return false
		}
	}
	return true
}

func (v vec) equal(w vec) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

func (v vec) clone(bits int) vec {
	out := newVec(bits)
	copy(out, v)
	return out
}

// gf2System keeps an augmented matrix over GF(2) in row echelon form:
// n coefficient columns plus the right-hand side at column n.
type gf2System struct {
	n     int
	rows  []vec // echelon rows, pivot column strictly increasing
	pivot []int
}

func newGF2System(n int) *gf2System { return &gf2System{n: n} }

// add eliminates the augmented row against the current basis and
// inserts the remainder if it is independent.
func (g *gf2System) add(row vec) {
	r := row.clone(g.n + 1)
	for i, p := range g.pivot {
		if r.bit(p) {
			r.xorIn(g.rows[i])
		}
	}
	p := -1
	for j := 0; j < g.n; j++ {
		if r.bit(j) {
			p = j
			break
		}
	}
	if p < 0 {
		return // dependent (or inconsistent; callers only add sound rows)
	}
	// Keep the basis fully reduced: clear the new pivot column from
	// every existing row, so single-pass elimination stays sound.
	for i := range g.rows {
		if g.rows[i].bit(p) {
			g.rows[i].xorIn(r)
		}
	}
	at := len(g.rows)
	for i, q := range g.pivot {
		if q > p {
			at = i
			break
		}
	}
	g.rows = append(g.rows, nil)
	copy(g.rows[at+1:], g.rows[at:])
	g.rows[at] = r
	g.pivot = append(g.pivot, 0)
	copy(g.pivot[at+1:], g.pivot[at:])
	g.pivot[at] = p
}

func (g *gf2System) rank() int { return len(g.rows) }

// determined reports whether key bit j has the same value in every
// solution, and that value: e_j must lie in the row space of the
// coefficient matrix.
func (g *gf2System) determined(j int) (bool, bool) {
	r := newVec(g.n + 1)
	r.set(j)
	for i, p := range g.pivot {
		if r.bit(p) {
			r.xorIn(g.rows[i])
		}
	}
	for c := 0; c < g.n; c++ {
		if r.bit(c) {
			return false, false
		}
	}
	return true, r.bit(g.n)
}
