package obfus

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cnf"
	"repro/internal/rsn"
	"repro/internal/sat"
)

// Attack outcomes.
const (
	// OutcomeRecovered: the distinguishing-input refinement collapsed
	// the key space — every key consistent with the oracle responses
	// is observationally equivalent, and the reported key is the
	// lexicographically smallest of them.
	OutcomeRecovered = "recovered"
	// OutcomeExhausted: an iteration or conflict budget was hit first.
	// The reported key is the smallest key consistent with the oracle
	// responses recorded so far.
	OutcomeExhausted = "exhausted"
)

// KeyRecoveryOptions bounds a ScanSAT-style key-recovery run.
type KeyRecoveryOptions struct {
	// Horizon is the observation window in shift cycles (0 = the
	// network's DefaultHorizon). The attack proves equivalence within
	// this window only.
	Horizon int
	// MaxIterations caps distinguishing-input refinements (0 = 64).
	MaxIterations int
	// ConflictBudget caps total solver conflicts across the refinement
	// loop (0 = unlimited).
	ConflictBudget int64
	// MaxConfigs bounds configuration enumeration in the final
	// verification step (0 = DefaultMaxConfigs).
	MaxConfigs int
}

func (o KeyRecoveryOptions) horizon(nw *rsn.Network) int {
	if o.Horizon > 0 {
		return o.Horizon
	}
	return DefaultHorizon(nw)
}

func (o KeyRecoveryOptions) maxIterations() int {
	if o.MaxIterations > 0 {
		return o.MaxIterations
	}
	return 64
}

func (o KeyRecoveryOptions) maxConfigs() int {
	if o.MaxConfigs > 0 {
		return o.MaxConfigs
	}
	return DefaultMaxConfigs
}

// KeyRecoveryResult reports a ScanSAT-style attack run.
type KeyRecoveryResult struct {
	Outcome    string
	Key        []bool // lexicographically smallest consistent key
	Iterations int    // distinguishing input patterns queried
	SolveCalls int
	// DeterminedBits counts key bits forced to one value across every
	// key consistent with the recorded oracle responses.
	DeterminedBits int
	// Verified reports whether the recovered key is observationally
	// equivalent to the true key within the horizon (the defender can
	// check this; a real attacker cannot).
	Verified bool
	Horizon  int
	Vars     int
	Clauses  int
	Stats    sat.Statistics
}

// KeyRecovery runs the ScanSAT-style attack: unroll the keyed scan
// path into a miter over two key copies, search for distinguishing
// input patterns, replay each against a simulation oracle holding the
// true key, and pin both copies to the observed response until no
// distinguishing pattern remains. The returned key is the
// lexicographically smallest key consistent with every oracle
// response — for a collapsed key space that is exactly the smallest
// key observationally equivalent to the true key, which is what
// BruteForce computes, so the two must agree bit for bit.
func KeyRecovery(ctx context.Context, nw *rsn.Network, ov *rsn.Obfuscation, trueKey []bool, opts KeyRecoveryOptions) (*KeyRecoveryResult, error) {
	if err := checkAttackable(nw, ov); err != nil {
		return nil, err
	}
	if len(trueKey) != ov.NumKeyBits {
		return nil, fmt.Errorf("obfus: true key has %d bits, overlay wants %d", len(trueKey), ov.NumKeyBits)
	}
	horizon := opts.horizon(nw)
	res := &KeyRecoveryResult{Outcome: OutcomeRecovered, Horizon: horizon}

	b := cnf.NewBuilder()
	e := newEncoder(b, nw, ov, horizon)
	m := buildMiter(e)
	s := b.S

	limited := opts.ConflictBudget > 0
	remaining := opts.ConflictBudget
	solve := func(assumptions ...sat.Lit) (sat.Status, error) {
		res.SolveCalls++
		if !limited {
			return s.Solve(assumptions...), nil
		}
		if remaining <= 0 {
			return sat.Unknown, sat.ErrBudget
		}
		used := s.Stats.Conflicts
		s.SetConflictBudget(remaining)
		st, err := s.SolveLimited(assumptions...)
		remaining -= s.Stats.Conflicts - used
		return st, err
	}

	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if res.Iterations >= opts.maxIterations() {
			res.Outcome = OutcomeExhausted
			break
		}
		st, err := solve(m.act)
		if errors.Is(err, sat.ErrBudget) {
			res.Outcome = OutcomeExhausted
			break
		}
		if err != nil {
			return nil, err
		}
		if st == sat.Unsat {
			break // key space collapsed
		}
		dipCfg := e.readConfig(m.cfg)
		dipIns := e.readBits(m.ins)
		oracleOut, err := oracleRespond(nw, ov, trueKey, dipCfg, dipIns)
		if err != nil {
			return nil, err
		}
		m.pin(dipCfg, dipIns, oracleOut)
		res.Iterations++
	}

	// The refinement loop is done; the remaining solves are cheap
	// model queries on the collapsed formula and run unbudgeted.
	s.SetConflictBudget(0)

	// Determined bits: a key bit is recovered outright when only one
	// polarity remains consistent with the recorded responses.
	n := ov.NumKeyBits
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.SolveCalls += 2
		sat0 := s.Solve(m.keyA[i].Not()) == sat.Sat
		sat1 := s.Solve(m.keyA[i]) == sat.Sat
		if sat0 != sat1 {
			res.DeterminedBits++
		}
	}

	// Lexicographic minimization, most significant bit first: the
	// smallest integer key consistent with every recorded response.
	assums := make([]sat.Lit, 0, n)
	for i := n - 1; i >= 0; i-- {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.SolveCalls++
		if s.Solve(append(assums, m.keyA[i].Not())...) == sat.Sat {
			assums = append(assums, m.keyA[i].Not())
		} else {
			assums = append(assums, m.keyA[i])
		}
	}
	res.SolveCalls++
	if st := s.Solve(assums...); st != sat.Sat {
		return nil, fmt.Errorf("obfus: key minimization lost satisfiability (%v)", st)
	}
	res.Key = e.readBits(m.keyA)

	cfgs, _ := enumConfigs(nw, opts.maxConfigs())
	eq, err := equivalent(nw, ov, res.Key, trueKey, cfgs, horizon)
	if err != nil {
		return nil, err
	}
	res.Verified = eq
	res.Vars = s.NumVars()
	res.Clauses = s.NumClauses()
	res.Stats = s.Stats
	return res, nil
}

// oracleRespond answers one oracle query: the scan-out stream of the
// device holding the true key for an attacker-chosen configuration and
// scan-in stream.
func oracleRespond(nw *rsn.Network, ov *rsn.Obfuscation, trueKey []bool, cfg rsn.Config, ins []bool) ([]bool, error) {
	words := make([]uint64, len(ins))
	for i, b := range ins {
		if b {
			words[i] = 1
		}
	}
	outs, err := respond(nw, ov, trueKey, cfg, words)
	if err != nil {
		return nil, err
	}
	res := make([]bool, len(outs))
	for i, w := range outs {
		res[i] = w&1 != 0
	}
	return res, nil
}
