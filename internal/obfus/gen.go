package obfus

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/rsn"
)

// GenConfig drives deterministic overlay generation over an existing
// network: which fraction of the key gates mux selects vs register
// outputs, and whether the key schedule is dynamic.
type GenConfig struct {
	// KeyBits is the key width; every bit drives exactly one gate.
	KeyBits int
	// MuxShare is the fraction of key bits assigned to key-controlled
	// muxes (rounded down, clamped to the 2-input muxes available);
	// the rest become XOR gates on register outputs. Negative means
	// the default 0.5.
	MuxShare float64
	// Dynamic selects the DynUnlock-style LFSR schedule; Taps may
	// override the default tap set {0, KeyBits/2}.
	Dynamic bool
	Taps    []int
}

// ObfuscateNetwork deterministically overlays key gates on a network:
// gate placement and the true key derive from the seed alone, so the
// same (network, config, seed) triple always produces the same
// defended design. Returns the overlay and the true key.
func ObfuscateNetwork(nw *rsn.Network, cfg GenConfig, seed int64) (*rsn.Obfuscation, []bool, error) {
	if cfg.KeyBits < 1 {
		return nil, nil, fmt.Errorf("obfus: KeyBits %d", cfg.KeyBits)
	}
	share := cfg.MuxShare
	if share < 0 {
		share = 0.5
	}
	if share > 1 {
		share = 1
	}
	var eligMux []int
	for i, m := range nw.Muxes {
		if len(m.Inputs) == 2 {
			eligMux = append(eligMux, i)
		}
	}
	eligReg := make([]int, len(nw.Registers))
	for i := range eligReg {
		eligReg[i] = i
	}
	nMux := int(float64(cfg.KeyBits) * share)
	if nMux > len(eligMux) {
		nMux = len(eligMux)
	}
	nXor := cfg.KeyBits - nMux
	if nXor > len(eligReg) {
		// Push the remainder back onto muxes if registers run out.
		spill := nXor - len(eligReg)
		nXor = len(eligReg)
		nMux += spill
		if nMux > len(eligMux) {
			return nil, nil, fmt.Errorf("obfus: %d key bits exceed gate capacity (%d registers + %d 2-input muxes)",
				cfg.KeyBits, len(eligReg), len(eligMux))
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(eligMux), func(i, j int) { eligMux[i], eligMux[j] = eligMux[j], eligMux[i] })
	rng.Shuffle(len(eligReg), func(i, j int) { eligReg[i], eligReg[j] = eligReg[j], eligReg[i] })
	ov := &rsn.Obfuscation{NumKeyBits: cfg.KeyBits, Dynamic: cfg.Dynamic}
	bit := 0
	for i := 0; i < nMux; i++ {
		ov.Gates = append(ov.Gates, rsn.KeyGate{Kind: rsn.KeyMux, Elem: eligMux[i], Bit: bit})
		bit++
	}
	for i := 0; i < nXor; i++ {
		ov.Gates = append(ov.Gates, rsn.KeyGate{Kind: rsn.KeyXOR, Elem: eligReg[i], Bit: bit})
		bit++
	}
	if cfg.Dynamic {
		ov.Taps = cfg.Taps
		if len(ov.Taps) == 0 {
			ov.Taps = defaultTaps(cfg.KeyBits)
		}
	} else if len(cfg.Taps) != 0 {
		return nil, nil, fmt.Errorf("obfus: taps given for a static schedule")
	}
	if err := ov.Validate(nw); err != nil {
		return nil, nil, err
	}
	key := rsn.KeyFromSeed(seed, cfg.KeyBits)
	return ov, key, nil
}

// defaultTaps picks a simple tap set: bit 0 plus the middle bit.
func defaultTaps(n int) []int {
	taps := []int{0}
	if mid := n / 2; mid > 0 {
		taps = append(taps, mid)
	}
	sort.Ints(taps)
	return taps
}
