package obfus

import (
	"fmt"
	"io"

	"repro/internal/cnf"
	"repro/internal/rsn"
	"repro/internal/sat"
)

// WriteMiterDIMACS exports the initial key-recovery miter as a DIMACS
// CNF: two unrolled key copies sharing a symbolic configuration and
// scan-in stream, with the "outputs differ somewhere" activation
// asserted as a hard clause. The formula asks whether any two keys are
// distinguishable at all — the first query of every ScanSAT run — and
// is the attack-shaped instance pinned under internal/sat/testdata.
func WriteMiterDIMACS(w io.Writer, nw *rsn.Network, ov *rsn.Obfuscation, horizon int) error {
	if err := checkAttackable(nw, ov); err != nil {
		return err
	}
	if horizon <= 0 {
		horizon = DefaultHorizon(nw)
	}
	b := cnf.NewBuilder()
	var clauses [][]sat.Lit
	b.S.SetClauseTrace(func(lits []sat.Lit) {
		clauses = append(clauses, append([]sat.Lit(nil), lits...))
	})
	e := newEncoder(b, nw, ov, horizon)
	m := buildMiter(e)
	b.Assert(m.act)
	b.S.SetClauseTrace(nil)
	st := nw.Stats()
	schedule := "static"
	if ov.Dynamic {
		schedule = "dynamic"
	}
	return sat.WriteDIMACS(w, b.S.NumVars(), clauses,
		fmt.Sprintf("key-recovery miter: network %s (%d scan FFs, %d muxes)", nw.Name, st.ScanFFs, st.Muxes),
		fmt.Sprintf("overlay: %d key bits, %d gates, %s schedule", ov.NumKeyBits, len(ov.Gates), schedule),
		fmt.Sprintf("horizon: %d shift cycles, two key copies, distinguisher asserted", horizon),
	)
}
