package obfus

import (
	"repro/internal/cnf"
	"repro/internal/rsn"
	"repro/internal/sat"
)

// encoder unrolls keyed shift behavior into CNF. One encoder is bound
// to one builder and can instantiate the unrolled transition function
// several times (two symbolic copies for the miter, plus one concrete
// copy per recorded distinguishing input pattern and key copy), with
// constant folding so concrete instantiations collapse to almost
// nothing.
type encoder struct {
	b       *cnf.Builder
	nw      *rsn.Network
	ov      *rsn.Obfuscation
	horizon int
	t, f    sat.Lit // cached constant literals
	revTopo []rsn.Ref
	topo    []rsn.Ref
	sinks   map[rsn.Ref][]rsn.Sink
	regGate []int
	muxGate []int
}

func newEncoder(b *cnf.Builder, nw *rsn.Network, ov *rsn.Obfuscation, horizon int) *encoder {
	e := &encoder{
		b:       b,
		nw:      nw,
		ov:      ov,
		horizon: horizon,
		t:       b.Const(true),
		f:       b.Const(false),
		topo:    nw.ElementTopoOrder(),
		sinks:   map[rsn.Ref][]rsn.Sink{},
		regGate: make([]int, len(nw.Registers)),
		muxGate: make([]int, len(nw.Muxes)),
	}
	e.revTopo = make([]rsn.Ref, len(e.topo))
	for i, r := range e.topo {
		e.revTopo[len(e.topo)-1-i] = r
	}
	for _, r := range e.topo {
		for _, s := range nw.Sinks(r) {
			e.sinks[r] = append(e.sinks[r], s)
		}
	}
	for i := range e.regGate {
		e.regGate[i] = -1
	}
	for i := range e.muxGate {
		e.muxGate[i] = -1
	}
	for _, g := range ov.Gates {
		switch g.Kind {
		case rsn.KeyXOR:
			e.regGate[g.Elem] = g.Bit
		case rsn.KeyMux:
			e.muxGate[g.Elem] = g.Bit
		}
	}
	return e
}

// Constant-folding gate helpers. Literals equal to the cached t/f
// constants are folded instead of encoded, so instantiations with
// concrete configurations and inputs shrink to the few gates that
// still depend on symbolic key bits.

func (e *encoder) isT(l sat.Lit) bool { return l == e.t || l == e.f.Not() }
func (e *encoder) isF(l sat.Lit) bool { return l == e.f || l == e.t.Not() }

func (e *encoder) lit(v bool) sat.Lit {
	if v {
		return e.t
	}
	return e.f
}

func (e *encoder) and2(a, x sat.Lit) sat.Lit {
	switch {
	case e.isF(a) || e.isF(x):
		return e.f
	case e.isT(a):
		return x
	case e.isT(x):
		return a
	case a == x:
		return a
	case a == x.Not():
		return e.f
	}
	o := e.b.NewVar()
	e.b.And(o, a, x)
	return o
}

func (e *encoder) orN(ins []sat.Lit) sat.Lit {
	keep := ins[:0:0]
	for _, l := range ins {
		if e.isT(l) {
			return e.t
		}
		if e.isF(l) {
			continue
		}
		dup := false
		for _, k := range keep {
			if k == l {
				dup = true
				break
			}
			if k == l.Not() {
				return e.t
			}
		}
		if !dup {
			keep = append(keep, l)
		}
	}
	switch len(keep) {
	case 0:
		return e.f
	case 1:
		return keep[0]
	}
	o := e.b.NewVar()
	e.b.Or(o, keep...)
	return o
}

func (e *encoder) xor2(a, x sat.Lit) sat.Lit {
	switch {
	case e.isF(a):
		return x
	case e.isF(x):
		return a
	case e.isT(a):
		return x.Not()
	case e.isT(x):
		return a.Not()
	case a == x:
		return e.f
	case a == x.Not():
		return e.t
	}
	o := e.b.NewVar()
	e.b.Xor2(o, a, x)
	return o
}

func (e *encoder) xorN(ins []sat.Lit) sat.Lit {
	acc := e.f
	for _, l := range ins {
		acc = e.xor2(acc, l)
	}
	return acc
}

func (e *encoder) mux(sel, lo, hi sat.Lit) sat.Lit {
	switch {
	case e.isT(sel):
		return hi
	case e.isF(sel):
		return lo
	case lo == hi:
		return lo
	case e.isF(lo) && e.isT(hi):
		return sel
	case e.isT(lo) && e.isF(hi):
		return sel.Not()
	case e.isT(hi):
		return e.orN([]sat.Lit{sel, lo})
	case e.isF(hi):
		return e.and2(sel.Not(), lo)
	case e.isT(lo):
		return e.orN([]sat.Lit{sel.Not(), hi})
	case e.isF(lo):
		return e.and2(sel, hi)
	}
	o := e.b.NewVar()
	e.b.Mux(o, sel, lo, hi)
	return o
}

// selectVal encodes the output of a one-hot selection: out equals
// ins[i] whenever sels[i] holds. sels must be constrained one-hot by
// the caller (cfgVars does).
func (e *encoder) selectVal(sels, ins []sat.Lit) sat.Lit {
	for i, s := range sels {
		if e.isT(s) {
			return ins[i]
		}
	}
	if len(sels) == 2 {
		// One-hot over two inputs is a plain mux on sels[1].
		return e.mux(sels[1], ins[0], ins[1])
	}
	o := e.b.NewVar()
	for i, s := range sels {
		if e.isF(s) {
			continue
		}
		in := ins[i]
		switch {
		case e.isT(in):
			e.b.S.AddClause(s.Not(), o)
		case e.isF(in):
			e.b.S.AddClause(s.Not(), o.Not())
		default:
			e.b.S.AddClause(s.Not(), in.Not(), o)
			e.b.S.AddClause(s.Not(), in, o.Not())
		}
	}
	return o
}

// cfgVars introduces a fresh symbolic attacker-visible configuration:
// per mux a one-hot select vector. Two-input muxes use a single bit
// (and its negation) without extra constraints; wider muxes get
// exactly-one clauses.
func (e *encoder) cfgVars() [][]sat.Lit {
	sels := make([][]sat.Lit, len(e.nw.Muxes))
	for m := range e.nw.Muxes {
		w := len(e.nw.Muxes[m].Inputs)
		switch w {
		case 1:
			sels[m] = []sat.Lit{e.t}
		case 2:
			c := e.b.NewVar()
			sels[m] = []sat.Lit{c.Not(), c}
		default:
			v := make([]sat.Lit, w)
			for i := range v {
				v[i] = e.b.NewVar()
			}
			e.b.S.AddClause(v...)
			for i := 0; i < w; i++ {
				for j := i + 1; j < w; j++ {
					e.b.S.AddClause(v[i].Not(), v[j].Not())
				}
			}
			sels[m] = v
		}
	}
	return sels
}

// cfgConst encodes a concrete configuration as constant selects.
func (e *encoder) cfgConst(cfg rsn.Config) [][]sat.Lit {
	sels := make([][]sat.Lit, len(e.nw.Muxes))
	for m := range e.nw.Muxes {
		w := len(e.nw.Muxes[m].Inputs)
		sel := 0
		if m < len(cfg) {
			sel = cfg[m]
		}
		v := make([]sat.Lit, w)
		for i := range v {
			v[i] = e.lit(i == sel)
		}
		sels[m] = v
	}
	return sels
}

// keyVars introduces fresh symbolic key bits.
func (e *encoder) keyVars() []sat.Lit {
	k := make([]sat.Lit, e.ov.NumKeyBits)
	for i := range k {
		k[i] = e.b.NewVar()
	}
	return k
}

// insVars introduces fresh symbolic scan-in bits, one per cycle.
func (e *encoder) insVars() []sat.Lit {
	v := make([]sat.Lit, e.horizon)
	for i := range v {
		v[i] = e.b.NewVar()
	}
	return v
}

// insConst encodes a concrete scan-in stream (padded with zeros).
func (e *encoder) insConst(stream []bool) []sat.Lit {
	v := make([]sat.Lit, e.horizon)
	for i := range v {
		v[i] = e.f
		if i < len(stream) && stream[i] {
			v[i] = e.t
		}
	}
	return v
}

// unroll instantiates the keyed shift behavior over the encoder's
// horizon and returns the per-cycle scan-out literals. The instance
// starts from the all-zero scan state; key, cfg and ins may be any mix
// of symbolic and constant literals.
func (e *encoder) unroll(key []sat.Lit, cfg [][]sat.Lit, ins []sat.Lit) []sat.Lit {
	nw, ov := e.nw, e.ov
	// Per-register cell literals of the current cycle.
	cells := make([][]sat.Lit, len(nw.Registers))
	for r := range cells {
		cells[r] = make([]sat.Lit, nw.Registers[r].Len)
		for i := range cells[r] {
			cells[r][i] = e.f
		}
	}
	ks := append([]sat.Lit(nil), key...)
	outs := make([]sat.Lit, e.horizon)
	val := make([]sat.Lit, nw.NumRefs())
	reach := make([]sat.Lit, nw.NumRefs())
	for t := 0; t < e.horizon; t++ {
		// Effective one-hot selects under the cycle's key state.
		eff := make([][]sat.Lit, len(nw.Muxes))
		for m := range nw.Muxes {
			if b := e.muxGate[m]; b >= 0 {
				s1 := e.xor2(cfg[m][1], ks[b])
				eff[m] = []sat.Lit{s1.Not(), s1}
			} else {
				eff[m] = cfg[m]
			}
		}
		// Element values in topo order (sources first). A register's
		// value is its last cell XORed with its output gate; a mux
		// selects among its input values.
		for _, r := range e.topo {
			switch r.Kind {
			case rsn.KScanIn:
				val[nw.RefIndex(r)] = ins[t]
			case rsn.KRegister:
				v := cells[r.ID][nw.Registers[r.ID].Len-1]
				if b := e.regGate[r.ID]; b >= 0 {
					v = e.xor2(v, ks[b])
				}
				val[nw.RefIndex(r)] = v
			case rsn.KMux:
				invals := make([]sat.Lit, len(nw.Muxes[r.ID].Inputs))
				for i, in := range nw.Muxes[r.ID].Inputs {
					invals[i] = val[nw.RefIndex(in)]
				}
				val[nw.RefIndex(r)] = e.selectVal(eff[r.ID], invals)
			}
		}
		outs[t] = val[nw.RefIndex(nw.OutSrc)]
		// Reach literals in reverse topo order (scan-out first):
		// an element is on the active path iff some consumer on the
		// path selects it.
		for _, r := range e.revTopo {
			if r.Kind == rsn.KScanOut {
				reach[nw.RefIndex(r)] = e.t
				continue
			}
			var terms []sat.Lit
			for _, s := range e.sinks[r] {
				if s.Elem.Kind == rsn.KScanOut {
					terms = append(terms, e.t)
					continue
				}
				c := reach[nw.RefIndex(s.Elem)]
				if s.Elem.Kind == rsn.KMux {
					c = e.and2(c, eff[s.Elem.ID][s.Idx])
				}
				terms = append(terms, c)
			}
			reach[nw.RefIndex(r)] = e.orN(terms)
		}
		// Transition: registers on the path shift, everything else
		// holds.
		next := make([][]sat.Lit, len(cells))
		for r := range cells {
			on := reach[nw.RefIndex(rsn.Reg(r))]
			next[r] = make([]sat.Lit, len(cells[r]))
			inVal := val[nw.RefIndex(nw.Registers[r].In)]
			next[r][0] = e.mux(on, cells[r][0], inVal)
			for i := 1; i < len(cells[r]); i++ {
				next[r][i] = e.mux(on, cells[r][i], cells[r][i-1])
			}
		}
		cells = next
		// Advance the key schedule.
		if ov.Dynamic {
			nks := make([]sat.Lit, len(ks))
			taps := make([]sat.Lit, len(ov.Taps))
			for i, tp := range ov.Taps {
				taps[i] = ks[tp]
			}
			copy(nks, ks[1:])
			nks[len(ks)-1] = e.xorN(taps)
			ks = nks
		}
	}
	return outs
}

// readConfig extracts the attacker-visible configuration from the
// model of a satisfied solve.
func (e *encoder) readConfig(cfg [][]sat.Lit) rsn.Config {
	out := make(rsn.Config, len(e.nw.Muxes))
	for m, sels := range cfg {
		out[m] = 0
		for i, s := range sels {
			if e.litVal(s) {
				out[m] = i
				break
			}
		}
	}
	return out
}

// readBits extracts literal values from the model.
func (e *encoder) readBits(lits []sat.Lit) []bool {
	out := make([]bool, len(lits))
	for i, l := range lits {
		out[i] = e.litVal(l)
	}
	return out
}

func (e *encoder) litVal(l sat.Lit) bool {
	if e.isT(l) {
		return true
	}
	if e.isF(l) {
		return false
	}
	v := e.b.S.Value(l.Var())
	if l.Neg() {
		v = !v
	}
	return v
}

// miter instantiates two key copies sharing a symbolic configuration
// and scan-in stream, and returns an activation literal implying that
// the two copies' outputs differ somewhere in the horizon.
type miter struct {
	enc      *encoder
	keyA     []sat.Lit
	keyB     []sat.Lit
	cfg      [][]sat.Lit
	ins      []sat.Lit
	act      sat.Lit
	numDiffs int
}

func buildMiter(e *encoder) *miter {
	m := &miter{
		enc:  e,
		keyA: e.keyVars(),
		keyB: e.keyVars(),
		cfg:  e.cfgVars(),
		ins:  e.insVars(),
	}
	outA := e.unroll(m.keyA, m.cfg, m.ins)
	outB := e.unroll(m.keyB, m.cfg, m.ins)
	diffs := make([]sat.Lit, 0, e.horizon)
	for t := range outA {
		d := e.xor2(outA[t], outB[t])
		if !e.isF(d) {
			diffs = append(diffs, d)
		}
	}
	m.numDiffs = len(diffs)
	m.act = e.b.NewVar()
	cl := make([]sat.Lit, 0, len(diffs)+1)
	cl = append(cl, m.act.Not())
	cl = append(cl, diffs...)
	e.b.S.AddClause(cl...)
	return m
}

// pin asserts that both key copies reproduce the oracle response for a
// recorded distinguishing input pattern.
func (m *miter) pin(cfg rsn.Config, stream, oracleOut []bool) {
	e := m.enc
	ccfg := e.cfgConst(cfg)
	cins := e.insConst(stream)
	for _, key := range [][]sat.Lit{m.keyA, m.keyB} {
		outs := e.unroll(key, ccfg, cins)
		for t, o := range outs {
			switch {
			case e.isT(o):
				if !oracleOut[t] {
					// Structurally impossible response: make the
					// contradiction explicit.
					e.b.Assert(e.f)
				}
			case e.isF(o):
				if oracleOut[t] {
					e.b.Assert(e.f)
				}
			case oracleOut[t]:
				e.b.Assert(o)
			default:
				e.b.Assert(o.Not())
			}
		}
	}
}
