package obfus

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/rsn"
	"repro/internal/sat"
)

func boolsOf(bits ...int) []bool {
	out := make([]bool, len(bits))
	for i, b := range bits {
		out[i] = b != 0
	}
	return out
}

// netChain builds SI -> R0(lens[0]) -> R1 -> ... -> SO, no muxes.
func netChain(lens ...int) *rsn.Network {
	nw := rsn.New("chain")
	m := nw.AddModule("m")
	prev := rsn.ScanIn
	for _, l := range lens {
		id := nw.AddRegister(regName(len(nw.Registers)), l, m)
		nw.Connect(id, prev)
		prev = rsn.Reg(id)
	}
	nw.ConnectOut(prev)
	return nw
}

func regName(i int) string { return "R" + string(rune('a'+i)) }

// netDiamond: SI -> A(2) -> {direct | via B(3)} -> M0 -> C(1) -> SO.
// The two mux branches have different path lengths (3 vs 6).
func netDiamond() *rsn.Network {
	nw := rsn.New("diamond")
	m := nw.AddModule("m")
	a := nw.AddRegister("A", 2, m)
	b := nw.AddRegister("B", 3, m)
	c := nw.AddRegister("C", 1, m)
	nw.Connect(a, rsn.ScanIn)
	nw.Connect(b, rsn.Reg(a))
	mx := nw.AddMux("M0", rsn.Reg(a), rsn.Reg(b))
	nw.Connect(c, rsn.Mx(mx))
	nw.ConnectOut(rsn.Reg(c))
	return nw
}

// netBalanced: SI -> A(1) -> {B1(1) | B2(1)} -> M0 -> C(1) -> SO. Both
// mux branches have the same path length, so delay probing cannot tell
// them apart.
func netBalanced() *rsn.Network {
	nw := rsn.New("balanced")
	m := nw.AddModule("m")
	a := nw.AddRegister("A", 1, m)
	b1 := nw.AddRegister("B1", 1, m)
	b2 := nw.AddRegister("B2", 1, m)
	c := nw.AddRegister("C", 1, m)
	nw.Connect(a, rsn.ScanIn)
	nw.Connect(b1, rsn.Reg(a))
	nw.Connect(b2, rsn.Reg(a))
	mx := nw.AddMux("M0", rsn.Reg(b1), rsn.Reg(b2))
	nw.Connect(c, rsn.Mx(mx))
	nw.ConnectOut(rsn.Reg(c))
	return nw
}

// netTwoMux: two reconvergent mux stages over five registers.
func netTwoMux() *rsn.Network {
	nw := rsn.New("twomux")
	m := nw.AddModule("m")
	a := nw.AddRegister("A", 1, m)
	b := nw.AddRegister("B", 2, m)
	c := nw.AddRegister("C", 1, m)
	d := nw.AddRegister("D", 1, m)
	e := nw.AddRegister("E", 1, m)
	nw.Connect(a, rsn.ScanIn)
	nw.Connect(b, rsn.Reg(a))
	m0 := nw.AddMux("M0", rsn.Reg(a), rsn.Reg(b))
	nw.Connect(c, rsn.Mx(m0))
	nw.Connect(d, rsn.Reg(c))
	m1 := nw.AddMux("M1", rsn.Reg(c), rsn.Reg(d))
	nw.Connect(e, rsn.Mx(m1))
	nw.ConnectOut(rsn.Reg(e))
	return nw
}

// mustSim runs the keyed reference simulator.
func mustSim(t *testing.T, nw *rsn.Network, ov *rsn.Obfuscation, key []bool, cfg rsn.Config, stream []bool, n int) []bool {
	t.Helper()
	ks, err := rsn.NewKeyedSimulator(nw, ov, key)
	if err != nil {
		t.Fatalf("NewKeyedSimulator: %v", err)
	}
	out, err := ks.ShiftN(cfg, stream, n)
	if err != nil {
		t.Fatalf("ShiftN: %v", err)
	}
	return out
}

// encoderCases pairs networks with overlays of every supported shape.
func encoderCases() []struct {
	name string
	nw   *rsn.Network
	ov   *rsn.Obfuscation
} {
	return []struct {
		name string
		nw   *rsn.Network
		ov   *rsn.Obfuscation
	}{
		{"chain-xor-static", netChain(2, 1, 2), &rsn.Obfuscation{
			NumKeyBits: 2,
			Gates: []rsn.KeyGate{
				{Kind: rsn.KeyXOR, Elem: 0, Bit: 0},
				{Kind: rsn.KeyXOR, Elem: 2, Bit: 1},
			}}},
		{"diamond-mixed-static", netDiamond(), &rsn.Obfuscation{
			NumKeyBits: 3,
			Gates: []rsn.KeyGate{
				{Kind: rsn.KeyMux, Elem: 0, Bit: 0},
				{Kind: rsn.KeyXOR, Elem: 1, Bit: 1},
				{Kind: rsn.KeyXOR, Elem: 2, Bit: 2},
			}}},
		{"twomux-mixed-static", netTwoMux(), &rsn.Obfuscation{
			NumKeyBits: 4,
			Gates: []rsn.KeyGate{
				{Kind: rsn.KeyMux, Elem: 0, Bit: 0},
				{Kind: rsn.KeyMux, Elem: 1, Bit: 1},
				{Kind: rsn.KeyXOR, Elem: 1, Bit: 2},
				{Kind: rsn.KeyXOR, Elem: 3, Bit: 3},
			}}},
		{"chain-xor-dynamic", netChain(1, 2, 1), &rsn.Obfuscation{
			NumKeyBits: 3, Dynamic: true, Taps: []int{0, 2},
			Gates: []rsn.KeyGate{
				{Kind: rsn.KeyXOR, Elem: 0, Bit: 0},
				{Kind: rsn.KeyXOR, Elem: 1, Bit: 2},
			}}},
		{"diamond-mixed-dynamic", netDiamond(), &rsn.Obfuscation{
			NumKeyBits: 3, Dynamic: true, Taps: []int{1},
			Gates: []rsn.KeyGate{
				{Kind: rsn.KeyMux, Elem: 0, Bit: 1},
				{Kind: rsn.KeyXOR, Elem: 0, Bit: 2},
			}}},
	}
}

// TestEncoderMatchesSimulator drives the CNF unroller and the keyed
// reference simulator with identical concrete inputs and demands
// identical scan-out streams — once through pure constant folding and
// once through real clauses with the key bound by solver assumptions.
func TestEncoderMatchesSimulator(t *testing.T) {
	for _, tc := range encoderCases() {
		t.Run(tc.name, func(t *testing.T) {
			if err := checkAttackable(tc.nw, tc.ov); err != nil {
				t.Fatalf("checkAttackable: %v", err)
			}
			rng := rand.New(rand.NewSource(7))
			const horizon = 12
			cfgs, _ := enumConfigs(tc.nw, DefaultMaxConfigs)
			for trial := 0; trial < 20; trial++ {
				key := make([]bool, tc.ov.NumKeyBits)
				for i := range key {
					key[i] = rng.Intn(2) == 1
				}
				cfg := cfgs[rng.Intn(len(cfgs))]
				stream := make([]bool, horizon)
				for i := range stream {
					stream[i] = rng.Intn(2) == 1
				}
				want := mustSim(t, tc.nw, tc.ov, key, cfg, stream, horizon)

				// Constant folding: everything concrete.
				b := cnf.NewBuilder()
				e := newEncoder(b, tc.nw, tc.ov, horizon)
				keyLits := make([]sat.Lit, len(key))
				for i, v := range key {
					keyLits[i] = e.lit(v)
				}
				outs := e.unroll(keyLits, e.cfgConst(cfg), e.insConst(stream))
				for c := range outs {
					if !e.isT(outs[c]) && !e.isF(outs[c]) {
						t.Fatalf("trial %d cycle %d: concrete unroll left a symbolic literal", trial, c)
					}
					if e.isT(outs[c]) != want[c] {
						t.Fatalf("trial %d cycle %d: folded=%v sim=%v", trial, c, e.isT(outs[c]), want[c])
					}
				}

				// Real clauses: symbolic key bound via assumptions.
				b2 := cnf.NewBuilder()
				e2 := newEncoder(b2, tc.nw, tc.ov, horizon)
				kv := e2.keyVars()
				outs2 := e2.unroll(kv, e2.cfgConst(cfg), e2.insConst(stream))
				assums := make([]sat.Lit, len(kv))
				for i, v := range key {
					assums[i] = kv[i]
					if !v {
						assums[i] = kv[i].Not()
					}
				}
				if st := b2.S.Solve(assums...); st != sat.Sat {
					t.Fatalf("trial %d: keyed unroll unsatisfiable (%v)", trial, st)
				}
				for c := range outs2 {
					if e2.litVal(outs2[c]) != want[c] {
						t.Fatalf("trial %d cycle %d: cnf=%v sim=%v", trial, c, e2.litVal(outs2[c]), want[c])
					}
				}
			}
		})
	}
}

// TestKeyRecoveryMatchesBruteForce is the differential acceptance test:
// the SAT attack's recovered key must be bit-identical to brute-force
// enumeration's, and brute force must not care how many workers scan
// the key space.
func TestKeyRecoveryMatchesBruteForce(t *testing.T) {
	type tcase struct {
		name    string
		nw      *rsn.Network
		ov      *rsn.Obfuscation
		keySeed int64
	}
	cases := []tcase{}
	for _, ec := range encoderCases() {
		cases = append(cases, tcase{ec.name, ec.nw, ec.ov, 41})
	}
	// A wider static overlay exercising 6 key bits over two muxes.
	wide := netTwoMux()
	cases = append(cases, tcase{"twomux-6bit", wide, &rsn.Obfuscation{
		NumKeyBits: 6,
		Gates: []rsn.KeyGate{
			{Kind: rsn.KeyMux, Elem: 0, Bit: 0},
			{Kind: rsn.KeyMux, Elem: 1, Bit: 1},
			{Kind: rsn.KeyXOR, Elem: 0, Bit: 2},
			{Kind: rsn.KeyXOR, Elem: 1, Bit: 3},
			{Kind: rsn.KeyXOR, Elem: 2, Bit: 4},
			{Kind: rsn.KeyXOR, Elem: 4, Bit: 5},
		}}, 97})
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			trueKey := rsn.KeyFromSeed(tc.keySeed, tc.ov.NumKeyBits)
			kr, err := KeyRecovery(context.Background(), tc.nw, tc.ov, trueKey, KeyRecoveryOptions{})
			if err != nil {
				t.Fatalf("KeyRecovery: %v", err)
			}
			if kr.Outcome != OutcomeRecovered {
				t.Fatalf("outcome %q after %d iterations", kr.Outcome, kr.Iterations)
			}
			if !kr.Verified {
				t.Fatalf("recovered key %s not equivalent to true key %s",
					rsn.KeyHex(kr.Key), rsn.KeyHex(trueKey))
			}
			var ref *BruteForceResult
			for _, workers := range []int{1, 3, 8} {
				bf, err := BruteForce(context.Background(), tc.nw, tc.ov, trueKey, BruteForceOptions{Workers: workers})
				if err != nil {
					t.Fatalf("BruteForce(workers=%d): %v", workers, err)
				}
				if ref == nil {
					ref = bf
				} else {
					if rsn.KeyHex(bf.Key) != rsn.KeyHex(ref.Key) || bf.EquivalentKeys != ref.EquivalentKeys {
						t.Fatalf("workers=%d: key %s (%d equivalent) != workers=1 key %s (%d equivalent)",
							workers, rsn.KeyHex(bf.Key), bf.EquivalentKeys, rsn.KeyHex(ref.Key), ref.EquivalentKeys)
					}
				}
			}
			if rsn.KeyHex(kr.Key) != rsn.KeyHex(ref.Key) {
				t.Fatalf("SAT key %s != brute-force key %s (true %s, %d equivalent keys)",
					rsn.KeyHex(kr.Key), rsn.KeyHex(ref.Key), rsn.KeyHex(trueKey), ref.EquivalentKeys)
			}
		})
	}
}

// TestKeyRecovery16Bit runs the differential test at the satellite's
// 16-key-bit ceiling.
func TestKeyRecovery16Bit(t *testing.T) {
	if testing.Short() {
		t.Skip("16-bit brute-force sweep in -short mode")
	}
	nw := rsn.New("wide16")
	m := nw.AddModule("m")
	prev := rsn.ScanIn
	var gates []rsn.KeyGate
	for i := 0; i < 14; i++ {
		id := nw.AddRegister(regName(i), 1, m)
		nw.Connect(id, prev)
		prev = rsn.Reg(id)
		gates = append(gates, rsn.KeyGate{Kind: rsn.KeyXOR, Elem: id, Bit: i})
		if i == 6 {
			mx := nw.AddMux("M0", prev, rsn.Reg(id-3))
			prev = rsn.Mx(mx)
			gates = append(gates, rsn.KeyGate{Kind: rsn.KeyMux, Elem: mx, Bit: 14})
		}
		if i == 11 {
			mx := nw.AddMux("M1", prev, rsn.Reg(id-2))
			prev = rsn.Mx(mx)
			gates = append(gates, rsn.KeyGate{Kind: rsn.KeyMux, Elem: mx, Bit: 15})
		}
	}
	nw.ConnectOut(prev)
	if err := nw.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	ov := &rsn.Obfuscation{NumKeyBits: 16, Gates: gates}
	trueKey := rsn.KeyFromSeed(4242, 16)
	opts := KeyRecoveryOptions{Horizon: 40}
	kr, err := KeyRecovery(context.Background(), nw, ov, trueKey, opts)
	if err != nil {
		t.Fatalf("KeyRecovery: %v", err)
	}
	if kr.Outcome != OutcomeRecovered || !kr.Verified {
		t.Fatalf("outcome=%q verified=%v", kr.Outcome, kr.Verified)
	}
	for _, workers := range []int{1, 3, 8} {
		bf, err := BruteForce(context.Background(), nw, ov, trueKey, BruteForceOptions{Horizon: 40, Workers: workers})
		if err != nil {
			t.Fatalf("BruteForce(workers=%d): %v", workers, err)
		}
		if rsn.KeyHex(bf.Key) != rsn.KeyHex(kr.Key) {
			t.Fatalf("workers=%d: brute key %s != SAT key %s", workers, rsn.KeyHex(bf.Key), rsn.KeyHex(kr.Key))
		}
	}
}

// TestKeyRecoveryBudgets checks that iteration and conflict budgets
// produce a clean exhausted outcome instead of an error.
func TestKeyRecoveryBudgets(t *testing.T) {
	nw := netTwoMux()
	ov := &rsn.Obfuscation{NumKeyBits: 4, Gates: []rsn.KeyGate{
		{Kind: rsn.KeyMux, Elem: 0, Bit: 0},
		{Kind: rsn.KeyMux, Elem: 1, Bit: 1},
		{Kind: rsn.KeyXOR, Elem: 1, Bit: 2},
		{Kind: rsn.KeyXOR, Elem: 3, Bit: 3},
	}}
	trueKey := rsn.KeyFromSeed(11, 4)
	kr, err := KeyRecovery(context.Background(), nw, ov, trueKey, KeyRecoveryOptions{MaxIterations: 1})
	if err != nil {
		t.Fatalf("KeyRecovery: %v", err)
	}
	if kr.Outcome != OutcomeExhausted {
		t.Fatalf("outcome %q with a 1-iteration budget", kr.Outcome)
	}
	if kr.Iterations > 1 {
		t.Fatalf("%d iterations with a 1-iteration budget", kr.Iterations)
	}
	if len(kr.Key) != 4 {
		t.Fatalf("exhausted run returned no candidate key")
	}
}

func TestFlushStaticXORChain(t *testing.T) {
	nw := netChain(1, 2, 1, 1)
	ov := &rsn.Obfuscation{NumKeyBits: 4, Gates: []rsn.KeyGate{
		{Kind: rsn.KeyXOR, Elem: 0, Bit: 0},
		{Kind: rsn.KeyXOR, Elem: 1, Bit: 1},
		{Kind: rsn.KeyXOR, Elem: 2, Bit: 2},
		{Kind: rsn.KeyXOR, Elem: 3, Bit: 3},
	}}
	trueKey := rsn.KeyFromSeed(5, 4)
	fl, err := FlushAttack(nw, ov, trueKey, FlushOptions{})
	if err != nil {
		t.Fatalf("FlushAttack: %v", err)
	}
	if !fl.Applicable || !fl.Correct {
		t.Fatalf("applicable=%v correct=%v", fl.Applicable, fl.Correct)
	}
	if fl.Rank != 4 || len(fl.RecoveredBits) != 4 {
		t.Fatalf("rank=%d recovered=%v, want full recovery of a pure XOR chain", fl.Rank, fl.RecoveredBits)
	}
	for i, b := range fl.RecoveredKey {
		if b != trueKey[i] {
			t.Fatalf("bit %d recovered as %v, true %v", i, b, trueKey[i])
		}
	}
}

func TestFlushDelayPinsMuxBit(t *testing.T) {
	// Diamond branches differ in length (3 vs 6), so the impulse delay
	// betrays the gated mux's effective select and pins its key bit.
	nw := netDiamond()
	ov := &rsn.Obfuscation{NumKeyBits: 2, Gates: []rsn.KeyGate{
		{Kind: rsn.KeyMux, Elem: 0, Bit: 0},
		{Kind: rsn.KeyXOR, Elem: 2, Bit: 1},
	}}
	for _, seed := range []int64{1, 2, 3, 4} {
		trueKey := rsn.KeyFromSeed(seed, 2)
		fl, err := FlushAttack(nw, ov, trueKey, FlushOptions{})
		if err != nil {
			t.Fatalf("seed %d: FlushAttack: %v", seed, err)
		}
		if !fl.Applicable || !fl.Correct {
			t.Fatalf("seed %d: applicable=%v correct=%v", seed, fl.Applicable, fl.Correct)
		}
		if len(fl.RecoveredBits) != 2 {
			t.Fatalf("seed %d: recovered %v, want both bits", seed, fl.RecoveredBits)
		}
		for _, b := range fl.RecoveredBits {
			if fl.RecoveredKey[b] != trueKey[b] {
				t.Fatalf("seed %d: bit %d recovered as %v, true %v", seed, b, fl.RecoveredKey[b], trueKey[b])
			}
		}
	}
}

func TestFlushBalancedMuxStaysHidden(t *testing.T) {
	// Equal-length branches: delay probing is blind and the branch
	// parities disagree, so the probes are ambiguous and the key stays
	// unrecovered — while the SAT attack still collapses it.
	nw := netBalanced()
	ov := &rsn.Obfuscation{NumKeyBits: 2, Gates: []rsn.KeyGate{
		{Kind: rsn.KeyMux, Elem: 0, Bit: 0},
		{Kind: rsn.KeyXOR, Elem: 1, Bit: 1}, // on branch register B1 only
	}}
	trueKey := rsn.KeyFromSeed(9, 2)
	fl, err := FlushAttack(nw, ov, trueKey, FlushOptions{})
	if err != nil {
		t.Fatalf("FlushAttack: %v", err)
	}
	if !fl.Applicable {
		t.Fatalf("balanced overlay should be applicable, reason %q", fl.Reason)
	}
	if len(fl.RecoveredBits) != 0 {
		t.Fatalf("flush recovered %v from a balanced mux overlay", fl.RecoveredBits)
	}
	if fl.AmbiguousProbes == 0 {
		t.Fatal("expected ambiguous probes on equal-length branches")
	}
	kr, err := KeyRecovery(context.Background(), nw, ov, trueKey, KeyRecoveryOptions{})
	if err != nil {
		t.Fatalf("KeyRecovery: %v", err)
	}
	if kr.Outcome != OutcomeRecovered || !kr.Verified {
		t.Fatalf("SAT attack should break what flush cannot: outcome=%q verified=%v", kr.Outcome, kr.Verified)
	}
}

func TestFlushDynamicXOR(t *testing.T) {
	nw := netChain(1, 1, 2)
	ov := &rsn.Obfuscation{NumKeyBits: 3, Dynamic: true, Taps: []int{0, 1},
		Gates: []rsn.KeyGate{
			{Kind: rsn.KeyXOR, Elem: 0, Bit: 0},
			{Kind: rsn.KeyXOR, Elem: 1, Bit: 1},
			{Kind: rsn.KeyXOR, Elem: 2, Bit: 2},
		}}
	trueKey := rsn.KeyFromSeed(13, 3)
	fl, err := FlushAttack(nw, ov, trueKey, FlushOptions{})
	if err != nil {
		t.Fatalf("FlushAttack: %v", err)
	}
	if !fl.Applicable || !fl.Correct {
		t.Fatalf("applicable=%v correct=%v", fl.Applicable, fl.Correct)
	}
	if len(fl.RecoveredBits) == 0 {
		t.Fatal("dynamic XOR gating is linear; flush should recover key bits")
	}
	for _, b := range fl.RecoveredBits {
		if fl.RecoveredKey[b] != trueKey[b] {
			t.Fatalf("bit %d recovered as %v, true %v", b, fl.RecoveredKey[b], trueKey[b])
		}
	}
}

func TestFlushDynamicMuxInapplicable(t *testing.T) {
	nw := netDiamond()
	ov := &rsn.Obfuscation{NumKeyBits: 2, Dynamic: true, Taps: []int{0},
		Gates: []rsn.KeyGate{
			{Kind: rsn.KeyMux, Elem: 0, Bit: 0},
			{Kind: rsn.KeyXOR, Elem: 2, Bit: 1},
		}}
	trueKey := rsn.KeyFromSeed(3, 2)
	fl, err := FlushAttack(nw, ov, trueKey, FlushOptions{})
	if err != nil {
		t.Fatalf("FlushAttack: %v", err)
	}
	if fl.Applicable {
		t.Fatal("dynamic mux gating should be out of the flush attack's reach")
	}
	if fl.Reason == "" {
		t.Fatal("inapplicable result must carry a reason")
	}
}

func TestObfuscateNetworkDeterministic(t *testing.T) {
	nw := netTwoMux()
	a, keyA, err := ObfuscateNetwork(nw, GenConfig{KeyBits: 5, MuxShare: -1}, 77)
	if err != nil {
		t.Fatalf("ObfuscateNetwork: %v", err)
	}
	b, keyB, err := ObfuscateNetwork(nw, GenConfig{KeyBits: 5, MuxShare: -1}, 77)
	if err != nil {
		t.Fatalf("ObfuscateNetwork: %v", err)
	}
	if rsn.KeyHex(keyA) != rsn.KeyHex(keyB) || len(a.Gates) != len(b.Gates) {
		t.Fatal("same seed produced different overlays")
	}
	for i := range a.Gates {
		if a.Gates[i] != b.Gates[i] {
			t.Fatalf("gate %d differs: %+v vs %+v", i, a.Gates[i], b.Gates[i])
		}
	}
	c, _, err := ObfuscateNetwork(nw, GenConfig{KeyBits: 5, MuxShare: -1}, 78)
	if err != nil {
		t.Fatalf("ObfuscateNetwork: %v", err)
	}
	same := len(a.Gates) == len(c.Gates)
	if same {
		for i := range a.Gates {
			if a.Gates[i] != c.Gates[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical gate placement")
	}
	if _, _, err := ObfuscateNetwork(nw, GenConfig{KeyBits: 40}, 1); err == nil {
		t.Fatal("KeyBits beyond gate capacity should error")
	}
}

func TestReportRoundTrip(t *testing.T) {
	nw := netDiamond()
	ov := &rsn.Obfuscation{NumKeyBits: 2, Gates: []rsn.KeyGate{
		{Kind: rsn.KeyMux, Elem: 0, Bit: 0},
		{Kind: rsn.KeyXOR, Elem: 2, Bit: 1},
	}}
	trueKey := rsn.KeyFromSeed(21, 2)
	kr, err := KeyRecovery(context.Background(), nw, ov, trueKey, KeyRecoveryOptions{})
	if err != nil {
		t.Fatalf("KeyRecovery: %v", err)
	}
	fl, err := FlushAttack(nw, ov, trueKey, FlushOptions{})
	if err != nil {
		t.Fatalf("FlushAttack: %v", err)
	}
	rep := NewReport("test", nw, ov, kr.Horizon, kr, fl)
	var buf bytes.Buffer
	if err := WriteReport(&buf, rep); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	got, err := ReadReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadReport: %v", err)
	}
	if got.SAT == nil || got.Flush == nil || got.SAT.RecoveredKey != rep.SAT.RecoveredKey {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Overlay.MuxGates != 1 || got.Overlay.XORGates != 1 {
		t.Fatalf("overlay info %+v", got.Overlay)
	}

	bad := *rep
	bad.Schema = "rsnsec.attack-report/v0"
	if err := bad.Validate(); err == nil {
		t.Fatal("wrong schema accepted")
	}
	bad2 := *rep
	badSAT := *rep.SAT
	badSAT.Outcome = "partial"
	bad2.SAT = &badSAT
	if err := bad2.Validate(); err == nil {
		t.Fatal("unknown outcome accepted")
	}
}

func TestWriteMiterDIMACS(t *testing.T) {
	nw := netDiamond()
	ov := &rsn.Obfuscation{NumKeyBits: 3, Gates: []rsn.KeyGate{
		{Kind: rsn.KeyMux, Elem: 0, Bit: 0},
		{Kind: rsn.KeyXOR, Elem: 1, Bit: 1},
		{Kind: rsn.KeyXOR, Elem: 2, Bit: 2},
	}}
	var buf bytes.Buffer
	if err := WriteMiterDIMACS(&buf, nw, ov, 16); err != nil {
		t.Fatalf("WriteMiterDIMACS: %v", err)
	}
	s, err := sat.LoadDIMACS(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadDIMACS: %v", err)
	}
	// The overlay is distinguishable, so some pair of keys must differ
	// observably: the exported miter is satisfiable.
	if st := s.Solve(); st != sat.Sat {
		t.Fatalf("miter solved %v, want SAT", st)
	}
}
