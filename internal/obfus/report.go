package obfus

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/rsn"
)

// ReportSchema is the attack-report schema identifier. Bump the suffix
// on any incompatible field change; readers reject unknown versions.
const ReportSchema = "rsnsec.attack-report/v1"

// Report is the machine-readable outcome of one attack-analysis run
// against an obfuscated network: what the overlay looks like, whether
// the SAT attack collapsed the key space, and how much of the key the
// flush attack recovers algebraically. Reports are built
// input-deterministically (solver statistics are deterministic for a
// given formula); wall-clock timings are optional so served documents
// stay byte-identical across replays.
type Report struct {
	Schema string `json:"schema"`
	// Tool identifies the producer (e.g. "rsnsec").
	Tool    string        `json:"tool,omitempty"`
	Network NetworkInfo   `json:"network"`
	Overlay OverlayInfo   `json:"overlay"`
	Horizon int           `json:"horizon"`
	SAT     *SATSection   `json:"sat,omitempty"`
	Flush   *FlushSection `json:"flush,omitempty"`
}

// NetworkInfo describes the attacked network.
type NetworkInfo struct {
	Name      string `json:"name"`
	Registers int    `json:"registers"`
	ScanFFs   int    `json:"scan_ffs"`
	Muxes     int    `json:"muxes"`
}

// OverlayInfo describes the obfuscation overlay under attack.
type OverlayInfo struct {
	KeyBits  int  `json:"key_bits"`
	XORGates int  `json:"xor_gates"`
	MuxGates int  `json:"mux_gates"`
	Dynamic  bool `json:"dynamic,omitempty"`
}

// SATSection reports the ScanSAT-style key recovery.
type SATSection struct {
	Outcome        string `json:"outcome"` // recovered | exhausted
	RecoveredKey   string `json:"recovered_key"`
	Verified       bool   `json:"verified"`
	Iterations     int    `json:"iterations"`
	SolveCalls     int    `json:"solve_calls"`
	DeterminedBits int    `json:"determined_bits"`
	Vars           int    `json:"vars"`
	Clauses        int    `json:"clauses"`
	Decisions      int64  `json:"decisions"`
	Propagations   int64  `json:"propagations"`
	Conflicts      int64  `json:"conflicts"`
	Restarts       int64  `json:"restarts"`
	TimeNS         int64  `json:"time_ns,omitempty"`
}

// FlushSection reports the GF(2) flush attack.
type FlushSection struct {
	Applicable      bool   `json:"applicable"`
	Reason          string `json:"reason,omitempty"`
	Probes          int    `json:"probes"`
	AmbiguousProbes int    `json:"ambiguous_probes,omitempty"`
	Equations       int    `json:"equations"`
	Rank            int    `json:"rank"`
	RecoveredBits   []int  `json:"recovered_bits,omitempty"`
	RecoveredKey    string `json:"recovered_key,omitempty"`
	Correct         bool   `json:"correct"`
	TimeNS          int64  `json:"time_ns,omitempty"`
}

// NewReport assembles a report from attack results (either may be nil
// when the corresponding attack was skipped).
func NewReport(tool string, nw *rsn.Network, ov *rsn.Obfuscation, horizon int, kr *KeyRecoveryResult, fl *FlushResult) *Report {
	st := nw.Stats()
	r := &Report{
		Schema:  ReportSchema,
		Tool:    tool,
		Network: NetworkInfo{Name: nw.Name, Registers: st.Registers, ScanFFs: st.ScanFFs, Muxes: st.Muxes},
		Overlay: OverlayInfo{KeyBits: ov.NumKeyBits, Dynamic: ov.Dynamic},
		Horizon: horizon,
	}
	for _, g := range ov.Gates {
		switch g.Kind {
		case rsn.KeyXOR:
			r.Overlay.XORGates++
		case rsn.KeyMux:
			r.Overlay.MuxGates++
		}
	}
	if kr != nil {
		r.SAT = &SATSection{
			Outcome:        kr.Outcome,
			RecoveredKey:   rsn.KeyHex(kr.Key),
			Verified:       kr.Verified,
			Iterations:     kr.Iterations,
			SolveCalls:     kr.SolveCalls,
			DeterminedBits: kr.DeterminedBits,
			Vars:           kr.Vars,
			Clauses:        kr.Clauses,
			Decisions:      kr.Stats.Decisions,
			Propagations:   kr.Stats.Propagations,
			Conflicts:      kr.Stats.Conflicts,
			Restarts:       kr.Stats.Restarts,
		}
	}
	if fl != nil {
		r.Flush = &FlushSection{
			Applicable:      fl.Applicable,
			Reason:          fl.Reason,
			Probes:          fl.Probes,
			AmbiguousProbes: fl.AmbiguousProbes,
			Equations:       fl.Equations,
			Rank:            fl.Rank,
			RecoveredBits:   fl.RecoveredBits,
			Correct:         fl.Correct,
		}
		if len(fl.RecoveredBits) > 0 {
			r.Flush.RecoveredKey = rsn.KeyHex(fl.RecoveredKey)
		}
	}
	return r
}

// Validate checks structural invariants of a report.
func (r *Report) Validate() error {
	if r == nil {
		return fmt.Errorf("attack report: nil")
	}
	if r.Schema != ReportSchema {
		return fmt.Errorf("attack report: schema %q, this reader wants %q", r.Schema, ReportSchema)
	}
	if r.Network.Registers < 0 || r.Network.ScanFFs < 0 || r.Network.Muxes < 0 {
		return fmt.Errorf("attack report: negative network stats")
	}
	if r.Overlay.KeyBits < 1 {
		return fmt.Errorf("attack report: overlay has %d key bits", r.Overlay.KeyBits)
	}
	if r.Overlay.XORGates < 0 || r.Overlay.MuxGates < 0 || r.Overlay.XORGates+r.Overlay.MuxGates < 1 {
		return fmt.Errorf("attack report: overlay gate counts invalid")
	}
	if r.Horizon < 1 {
		return fmt.Errorf("attack report: horizon %d", r.Horizon)
	}
	if r.SAT == nil && r.Flush == nil {
		return fmt.Errorf("attack report: no attack sections")
	}
	if s := r.SAT; s != nil {
		if s.Outcome != OutcomeRecovered && s.Outcome != OutcomeExhausted {
			return fmt.Errorf("attack report: sat outcome %q", s.Outcome)
		}
		if _, err := rsn.ParseKeyHex(s.RecoveredKey, r.Overlay.KeyBits); err != nil {
			return fmt.Errorf("attack report: sat recovered key: %w", err)
		}
		for name, v := range map[string]int64{
			"iterations": int64(s.Iterations), "solve_calls": int64(s.SolveCalls),
			"determined_bits": int64(s.DeterminedBits), "vars": int64(s.Vars),
			"clauses": int64(s.Clauses), "decisions": s.Decisions,
			"propagations": s.Propagations, "conflicts": s.Conflicts,
			"restarts": s.Restarts, "time_ns": s.TimeNS,
		} {
			if v < 0 {
				return fmt.Errorf("attack report: sat %s negative", name)
			}
		}
		if s.DeterminedBits > r.Overlay.KeyBits {
			return fmt.Errorf("attack report: sat determined %d of %d key bits", s.DeterminedBits, r.Overlay.KeyBits)
		}
	}
	if f := r.Flush; f != nil {
		if f.Probes < 0 || f.AmbiguousProbes < 0 || f.Equations < 0 || f.Rank < 0 || f.TimeNS < 0 {
			return fmt.Errorf("attack report: flush counters negative")
		}
		if f.Rank > f.Equations {
			return fmt.Errorf("attack report: flush rank %d exceeds %d equations", f.Rank, f.Equations)
		}
		if len(f.RecoveredBits) > r.Overlay.KeyBits {
			return fmt.Errorf("attack report: flush recovered %d of %d key bits", len(f.RecoveredBits), r.Overlay.KeyBits)
		}
		for _, b := range f.RecoveredBits {
			if b < 0 || b >= r.Overlay.KeyBits {
				return fmt.Errorf("attack report: flush recovered bit %d out of range", b)
			}
		}
		if f.RecoveredKey != "" {
			if _, err := rsn.ParseKeyHex(f.RecoveredKey, r.Overlay.KeyBits); err != nil {
				return fmt.Errorf("attack report: flush recovered key: %w", err)
			}
		}
	}
	return nil
}

// WriteReport serializes the report as indented JSON.
func WriteReport(w io.Writer, r *Report) error {
	if err := r.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses and validates an attack report.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("attack report: parse: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}
