package obfus

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
)

// The attack-shaped solver benchmarks under internal/sat run against
// pinned DIMACS exports of the initial ScanSAT key-recovery miter (see
// WriteMiterDIMACS): two catalog networks obfuscated deterministically,
// one static mixed xor/mux overlay and one dynamic LFSR-scheduled
// variant. This test regenerates both instances from their recipes and
// asserts the committed files match byte for byte, so the benchmark
// corpus can never drift from the encoder silently; set
// REGEN_ATTACK_CNF=1 to rewrite the files after a deliberate encoding
// change (and re-baseline bench_tables.txt).

type miterRecipe struct {
	file    string
	bench   string
	target  int // scan-FF budget passed to ScaleForTarget
	cfg     GenConfig
	seed    int64
	horizon int // 0 = DefaultHorizon
}

var miterRecipes = []miterRecipe{
	{
		file:   "attack_miter_static.cnf",
		bench:  "TreeFlat",
		target: 48,
		cfg:    GenConfig{KeyBits: 16, MuxShare: 0.5},
		seed:   11,
	},
	{
		file:   "attack_miter_dyn.cnf",
		bench:  "BasicSCB",
		target: 36,
		cfg:    GenConfig{KeyBits: 8, MuxShare: 0.5, Dynamic: true},
		seed:   7,
	},
}

func genMiterCNF(t *testing.T, r miterRecipe) []byte {
	t.Helper()
	b, ok := bench.ByName(r.bench)
	if !ok {
		t.Fatalf("%s not in catalog", r.bench)
	}
	nw := b.Build(b.ScaleForTarget(r.target))
	ov, _, err := ObfuscateNetwork(nw, r.cfg, r.seed)
	if err != nil {
		t.Fatalf("%s: obfuscate: %v", r.file, err)
	}
	var buf bytes.Buffer
	if err := WriteMiterDIMACS(&buf, nw, ov, r.horizon); err != nil {
		t.Fatalf("%s: write miter: %v", r.file, err)
	}
	return buf.Bytes()
}

func TestAttackMiterTestdataPinned(t *testing.T) {
	for _, r := range miterRecipes {
		path := filepath.Join("..", "sat", "testdata", r.file)
		got := genMiterCNF(t, r)
		if os.Getenv("REGEN_ATTACK_CNF") != "" {
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("regenerated %s (%d bytes)", path, len(got))
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("pinned instance missing (regenerate with REGEN_ATTACK_CNF=1): %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: committed file differs from the deterministic regeneration (%d vs %d bytes); "+
				"if the encoder change is deliberate, rerun with REGEN_ATTACK_CNF=1 and re-baseline bench_tables.txt",
				r.file, len(want), len(got))
		}
	}
}
