package paperex

import (
	"testing"

	"repro/internal/netlist"
)

func TestExampleStructureMatchesFigure1(t *testing.T) {
	e := New()
	st := e.Network.Stats()
	// Figure 1: 14 scan flip-flops in 5 scan registers, 2 scan muxes;
	// 10 RSN-connected circuit flip-flops plus IF1 and IF2.
	if st.Registers != 5 || st.ScanFFs != 14 || st.Muxes != 2 {
		t.Fatalf("network stats = %+v", st)
	}
	if e.Circuit.NumFFs() != 12 || len(e.Internal) != 2 {
		t.Fatalf("circuit: %d FFs, %d internal", e.Circuit.NumFFs(), len(e.Internal))
	}
	if err := e.Network.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := e.Circuit.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExampleSpec(t *testing.T) {
	e := New()
	if !e.Spec.Violates(e.Crypto, e.Untrusted) {
		t.Fatal("crypto data must not enter the untrusted module")
	}
	if e.Spec.Violates(e.Crypto, e.Plain) || e.Spec.Violates(e.Crypto, e.Misc) {
		t.Fatal("crypto data may traverse trusted segments")
	}
	if e.Spec.Violates(e.Plain, e.Untrusted) {
		t.Fatal("plain data is unrestricted")
	}
}

// TestReconvergenceMasksF6 simulates the circuit to confirm the Figure 5
// property: IF1's next state equals F5 regardless of F6.
func TestReconvergenceMasksF6(t *testing.T) {
	e := New()
	sim := netlist.NewSimulator(e.Circuit)
	for _, f5 := range []bool{false, true} {
		for _, f6 := range []bool{false, true} {
			sim.SetFF(e.F[4], f5)
			sim.SetFF(e.F[5], f6)
			sim.Eval()
			if got := sim.NodeValue(e.Circuit.FFs[e.IF1].D); got != f5 {
				t.Fatalf("IF1' = %v with F5=%v F6=%v; must equal F5", got, f5, f6)
			}
		}
	}
}

// TestHybridCircuitPath: F5's value reaches F7 and F9 after three clock
// cycles (F5 -> IF1 -> IF2 -> F7/F9).
func TestHybridCircuitPath(t *testing.T) {
	e := New()
	sim := netlist.NewSimulator(e.Circuit)
	sim.SetFF(e.F[4], true)
	for i := 0; i < 3; i++ {
		sim.Step()
	}
	if !sim.FFValue(e.F[6]) {
		t.Fatal("F7 did not receive F5's data")
	}
	if !sim.FFValue(e.F[8]) {
		t.Fatal("F9 did not receive F5's data")
	}
}

func TestCaptureUpdateLinksAreSymmetric(t *testing.T) {
	e := New()
	for r := range e.Network.Registers {
		reg := &e.Network.Registers[r]
		for b := 0; b < reg.Len; b++ {
			if reg.Capture[b] != reg.Update[b] {
				t.Fatalf("register %d bit %d: capture %v != update %v", r, b, reg.Capture[b], reg.Update[b])
			}
		}
	}
}
