// Package paperex builds the paper's running example (Figures 1, 4 and
// 5): a circuit with a crypto module holding confidential data, an
// untrusted module, internal flip-flops forming a hybrid leak path with
// an XOR reconvergence, and a 5-register/14-scan-flip-flop/2-mux
// reconfigurable scan network on top.
package paperex

import (
	"repro/internal/netlist"
	"repro/internal/rsn"
	"repro/internal/secspec"
)

// Example bundles the running example's parts.
type Example struct {
	Circuit  *netlist.Netlist
	Network  *rsn.Network
	Spec     *secspec.Spec
	Internal []netlist.FFID

	// Modules.
	Crypto, Plain, Untrusted, Misc int

	// Circuit flip-flops F1..F10 (indices 0..9) and IF1, IF2.
	F        [10]netlist.FFID
	IF1, IF2 netlist.FFID

	// Scan registers SR1..SR5 (ids 0..4).
	SR [5]int
	// Muxes M1, M2.
	M1, M2 int
}

// New constructs the running example.
//
// Circuit: F2 holds the crypto module's confidential data. The plain
// module's F5 feeds the internal flip-flop IF1 through an XOR
// reconvergence with F6 (IF1 functionally depends on F5 but only
// structurally on F6), IF1 feeds IF2, and IF2 feeds the untrusted
// module's F7 and F9 — the circuit half of the hybrid scan path.
//
// RSN: SI -> SR1(crypto) -> SR2(plain) ; M1{SR1,SR2} -> SR3(plain) ;
// M2{SR3,SR1} -> SR4(untrusted) -> SR5(misc) -> SO. Confidential data
// can reach the untrusted SR4 purely (shift SR1 -> M2 -> SR4) and
// hybridly (shift SR1 -> M1 -> SR3, update F5, circuit to F7, capture).
//
// Specification: crypto data accepts only trust categories {2,3};
// the untrusted module has trust 0.
func New() *Example {
	e := &Example{}
	c := netlist.New()
	e.Circuit = c
	e.Crypto = c.AddModule("crypto")
	e.Plain = c.AddModule("plain")
	e.Untrusted = c.AddModule("untrusted")
	e.Misc = c.AddModule("misc")

	mods := [10]int{e.Crypto, e.Crypto, e.Plain, e.Plain, e.Plain, e.Plain, e.Untrusted, e.Untrusted, e.Untrusted, e.Untrusted}
	names := [10]string{"F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "F10"}
	for i := range e.F {
		e.F[i] = c.AddFF(names[i], mods[i])
	}
	e.IF1 = c.AddFF("IF1", e.Plain)
	e.IF2 = c.AddFF("IF2", e.Plain)
	e.Internal = []netlist.FFID{e.IF1, e.IF2}

	node := func(f netlist.FFID) netlist.NodeID { return c.FFs[f].Node }
	hold := func(f netlist.FFID) { c.SetFFInput(f, node(f)) }
	// Crypto and plain state holds its value between scan operations.
	for _, i := range []int{0, 1, 2, 3, 4, 5, 7, 9} {
		hold(e.F[i])
	}
	// IF1 = XOR(F6, XOR(F6, F5)): the reconvergence of Figure 5 — the
	// structural path over F6 cancels, only F5's data propagates.
	inner := c.AddGate(netlist.Xor, node(e.F[5]), node(e.F[4]))
	c.SetFFInput(e.IF1, c.AddGate(netlist.Xor, node(e.F[5]), inner))
	c.SetFFInput(e.IF2, node(e.IF1))
	// The untrusted module observes IF2 (Figure 3: F9 depends on IF2).
	c.SetFFInput(e.F[6], c.AddGate(netlist.Or, node(e.F[6]), node(e.IF2))) // F7
	c.SetFFInput(e.F[8], node(e.IF2))                                      // F9
	if err := c.Validate(); err != nil {
		panic("paperex: circuit invalid: " + err.Error())
	}

	nw := rsn.New("running-example")
	e.Network = nw
	// Mirror the circuit's module table on the network.
	for _, m := range c.Modules {
		nw.AddModule(m)
	}
	e.SR[0] = nw.AddRegister("SR1", 2, e.Crypto)
	e.SR[1] = nw.AddRegister("SR2", 2, e.Plain)
	e.SR[2] = nw.AddRegister("SR3", 2, e.Plain)
	e.SR[3] = nw.AddRegister("SR4", 4, e.Untrusted)
	e.SR[4] = nw.AddRegister("SR5", 4, e.Misc)

	link := func(reg, bit int, f netlist.FFID) {
		nw.SetCapture(reg, bit, f)
		nw.SetUpdate(reg, bit, f)
	}
	link(e.SR[0], 0, e.F[0]) // SF1 <-> F1
	link(e.SR[0], 1, e.F[1]) // SF2 <-> F2 (confidential)
	link(e.SR[1], 0, e.F[2])
	link(e.SR[1], 1, e.F[3])
	link(e.SR[2], 0, e.F[4]) // SF5 <-> F5: the hybrid update point
	link(e.SR[2], 1, e.F[5])
	link(e.SR[3], 0, e.F[6]) // SF7 <-> F7: the untrusted capture point
	link(e.SR[3], 1, e.F[7])
	link(e.SR[3], 2, e.F[8])
	link(e.SR[3], 3, e.F[9])
	// SR5 has no instrument links.

	nw.Connect(e.SR[0], rsn.ScanIn)
	nw.Connect(e.SR[1], rsn.Reg(e.SR[0]))
	e.M1 = nw.AddMux("M1", rsn.Reg(e.SR[0]), rsn.Reg(e.SR[1]))
	nw.Connect(e.SR[2], rsn.Mx(e.M1))
	e.M2 = nw.AddMux("M2", rsn.Reg(e.SR[2]), rsn.Reg(e.SR[0]))
	nw.Connect(e.SR[3], rsn.Mx(e.M2))
	nw.Connect(e.SR[4], rsn.Reg(e.SR[3]))
	nw.ConnectOut(rsn.Reg(e.SR[4]))
	if err := nw.Validate(); err != nil {
		panic("paperex: network invalid: " + err.Error())
	}

	s := secspec.New(len(c.Modules), 4)
	s.SetTrust(e.Crypto, 3)
	s.SetAccepts(e.Crypto, secspec.NewCatSet(2, 3))
	s.SetTrust(e.Plain, 2)
	s.SetAccepts(e.Plain, secspec.AllCats(4))
	s.SetTrust(e.Untrusted, 0)
	s.SetAccepts(e.Untrusted, secspec.AllCats(4))
	s.SetTrust(e.Misc, 2)
	s.SetAccepts(e.Misc, secspec.AllCats(4))
	e.Spec = s
	return e
}
