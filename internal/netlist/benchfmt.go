package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file implements the classic ISCAS-89 ".bench" netlist format so
// generated circuits can be persisted and exchanged:
//
//	# comment
//	# @module crypto          <- extension: module of following DFFs
//	INPUT(pi0)
//	OUTPUT(g7)
//	f1 = DFF(d1)
//	d1 = AND(pi0, f1)
//	g7 = NAND(f1, pi0)
//
// Supported functions: AND, OR, NAND, NOR, XOR, XNOR, NOT, BUFF, MUX,
// MAJ (extensions), CONST0, CONST1, DFF. Signals may be declared in any
// order.

var gateByName = map[string]GateType{
	"AND": And, "OR": Or, "NAND": Nand, "NOR": Nor,
	"XOR": Xor, "XNOR": Xnor, "NOT": Not, "BUFF": Buf, "BUF": Buf,
	"MUX": Mux, "MAJ": Maj,
}

var nameByGate = map[GateType]string{
	And: "AND", Or: "OR", Nand: "NAND", Nor: "NOR",
	Xor: "XOR", Xnor: "XNOR", Not: "NOT", Buf: "BUFF",
	Mux: "MUX", Maj: "MAJ",
}

// WriteBench renders the netlist in .bench format. Flip-flop and input
// names are preserved; gate nodes get synthetic names. Module
// membership is recorded with "# @module" pragmas.
func WriteBench(w io.Writer, n *Netlist) error {
	bw := bufio.NewWriter(w)
	name := make([]string, len(n.Nodes))
	used := map[string]bool{}
	uniq := func(base string, id NodeID) string {
		cand := base
		if cand == "" || used[cand] {
			cand = fmt.Sprintf("n%d", id)
			for used[cand] {
				cand = "x" + cand
			}
		}
		used[cand] = true
		return cand
	}
	for _, id := range n.Inputs {
		name[id] = uniq(n.Nodes[id].Name, id)
		fmt.Fprintf(bw, "INPUT(%s)\n", name[id])
	}
	for i := range n.FFs {
		id := n.FFs[i].Node
		name[id] = uniq(n.FFs[i].Name, id)
	}
	// Name the remaining nodes.
	for id := range n.Nodes {
		if name[id] == "" {
			name[id] = uniq("", NodeID(id))
		}
	}
	// Constants.
	for id := range n.Nodes {
		switch n.Nodes[id].Kind {
		case KindConst0:
			fmt.Fprintf(bw, "%s = CONST0()\n", name[id])
		case KindConst1:
			fmt.Fprintf(bw, "%s = CONST1()\n", name[id])
		}
	}
	// Gates in topological order.
	for _, id := range n.TopoOrder() {
		nd := &n.Nodes[id]
		ins := make([]string, len(nd.Fanin))
		for i, f := range nd.Fanin {
			ins[i] = name[f]
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", name[id], nameByGate[nd.Gate], strings.Join(ins, ", "))
	}
	// Flip-flops, grouped by module for compact pragmas.
	order := make([]int, len(n.FFs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return n.FFs[order[a]].Module < n.FFs[order[b]].Module })
	lastModule := -1
	for _, i := range order {
		ff := &n.FFs[i]
		if ff.Module != lastModule {
			mod := "default"
			if ff.Module >= 0 && ff.Module < len(n.Modules) {
				mod = n.Modules[ff.Module]
			}
			fmt.Fprintf(bw, "# @module %s\n", mod)
			lastModule = ff.Module
		}
		if ff.D == NoNode {
			return fmt.Errorf("netlist: flip-flop %q unwired; cannot serialize", ff.Name)
		}
		fmt.Fprintf(bw, "%s = DFF(%s)\n", name[ff.Node], name[ff.D])
	}
	return bw.Flush()
}

// ParseBench reads a .bench description into a netlist.
func ParseBench(r io.Reader) (*Netlist, error) {
	type rawGate struct {
		out  string
		fn   string
		ins  []string
		line int
	}
	type rawFF struct {
		out    string
		d      string
		module string
		line   int
	}
	var (
		inputs []string
		gates  []rawGate
		ffs    []rawFF
	)
	curModule := "default"
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimSpace(strings.TrimPrefix(line, "#"))
			if strings.HasPrefix(rest, "@module") {
				m := strings.TrimSpace(strings.TrimPrefix(rest, "@module"))
				if m != "" {
					curModule = m
				}
			}
			continue
		}
		upper := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(upper, "INPUT(") && strings.HasSuffix(line, ")"):
			inputs = append(inputs, strings.TrimSpace(line[len("INPUT("):len(line)-1]))
		case strings.HasPrefix(upper, "OUTPUT(") && strings.HasSuffix(line, ")"):
			// Outputs carry no structure in this model; accepted and
			// ignored for compatibility.
		default:
			eq := strings.Index(line, "=")
			if eq < 0 {
				return nil, fmt.Errorf("bench: line %d: expected assignment, got %q", lineNo, line)
			}
			out := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			open := strings.Index(rhs, "(")
			if open < 0 || !strings.HasSuffix(rhs, ")") {
				return nil, fmt.Errorf("bench: line %d: malformed function %q", lineNo, rhs)
			}
			fn := strings.ToUpper(strings.TrimSpace(rhs[:open]))
			argStr := strings.TrimSpace(rhs[open+1 : len(rhs)-1])
			var ins []string
			if argStr != "" {
				for _, a := range strings.Split(argStr, ",") {
					ins = append(ins, strings.TrimSpace(a))
				}
			}
			if fn == "DFF" {
				if len(ins) != 1 {
					return nil, fmt.Errorf("bench: line %d: DFF takes one input", lineNo)
				}
				ffs = append(ffs, rawFF{out: out, d: ins[0], module: curModule, line: lineNo})
			} else {
				gates = append(gates, rawGate{out: out, fn: fn, ins: ins, line: lineNo})
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	n := New()
	modIdx := map[string]int{}
	moduleOf := func(name string) int {
		if i, ok := modIdx[name]; ok {
			return i
		}
		i := n.AddModule(name)
		modIdx[name] = i
		return i
	}
	nodeOf := map[string]NodeID{}
	declare := func(name string, id NodeID, line int) error {
		if _, dup := nodeOf[name]; dup {
			return fmt.Errorf("bench: line %d: signal %q declared twice", line, name)
		}
		nodeOf[name] = id
		return nil
	}
	for _, in := range inputs {
		if err := declare(in, n.AddInput(in), 0); err != nil {
			return nil, err
		}
	}
	for _, ff := range ffs {
		id := n.AddFF(ff.out, moduleOf(ff.module))
		if err := declare(ff.out, n.FFs[id].Node, ff.line); err != nil {
			return nil, err
		}
	}
	// Gates may reference later gates; resolve iteratively. Constants
	// first (no inputs), then repeat passes until all gates placed.
	placed := make([]bool, len(gates))
	remaining := len(gates)
	for remaining > 0 {
		progress := false
		for gi := range gates {
			if placed[gi] {
				continue
			}
			g := &gates[gi]
			switch g.fn {
			case "CONST0", "CONST1":
				if err := declare(g.out, n.AddConst(g.fn == "CONST1"), g.line); err != nil {
					return nil, err
				}
				placed[gi] = true
				remaining--
				progress = true
				continue
			}
			gt, ok := gateByName[g.fn]
			if !ok {
				return nil, fmt.Errorf("bench: line %d: unknown function %q", g.line, g.fn)
			}
			ready := true
			fanin := make([]NodeID, len(g.ins))
			for i, in := range g.ins {
				id, ok := nodeOf[in]
				if !ok {
					ready = false
					break
				}
				fanin[i] = id
			}
			if !ready {
				continue
			}
			var id NodeID
			func() {
				defer func() {
					if r := recover(); r != nil {
						id = NoNode
					}
				}()
				id = n.AddGate(gt, fanin...)
			}()
			if id == NoNode {
				return nil, fmt.Errorf("bench: line %d: invalid arity for %s", g.line, g.fn)
			}
			if err := declare(g.out, id, g.line); err != nil {
				return nil, err
			}
			placed[gi] = true
			remaining--
			progress = true
		}
		if !progress {
			// Some gate references an undefined signal or a
			// combinational cycle exists.
			for gi := range gates {
				if !placed[gi] {
					return nil, fmt.Errorf("bench: line %d: unresolved signals in %q (undefined input or combinational cycle)", gates[gi].line, gates[gi].out)
				}
			}
		}
	}
	for i := range ffs {
		d, ok := nodeOf[ffs[i].d]
		if !ok {
			return nil, fmt.Errorf("bench: line %d: DFF %q references undefined signal %q", ffs[i].line, ffs[i].out, ffs[i].d)
		}
		n.SetFFInput(FFID(i), d)
	}
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	return n, nil
}
