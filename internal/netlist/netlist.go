// Package netlist models gate-level sequential circuits: combinational
// gates, flip-flops and primary inputs.
//
// It is the "underlying circuit logic" substrate of the secure-data-flow
// method: scan flip-flops of the RSN capture from and update into
// circuit flip-flops, and data can travel further through the circuit
// over multiple clock cycles. Flip-flops that are not connected to the
// scan infrastructure are called internal flip-flops (IF1/IF2 in the
// paper's running example); the dependency analysis bridges over them.
package netlist

import (
	"fmt"
)

// GateType enumerates supported combinational gate functions.
type GateType uint8

// Gate functions. Mux takes fan-in (sel, lo, hi); Maj is 3-input
// majority; the rest are the usual n-ary (or unary) Boolean operators.
const (
	And GateType = iota
	Or
	Nand
	Nor
	Xor
	Xnor
	Not
	Buf
	Mux
	Maj
)

var gateNames = [...]string{"AND", "OR", "NAND", "NOR", "XOR", "XNOR", "NOT", "BUF", "MUX", "MAJ"}

func (g GateType) String() string {
	if int(g) < len(gateNames) {
		return gateNames[g]
	}
	return fmt.Sprintf("GateType(%d)", uint8(g))
}

// NodeKind distinguishes the kinds of netlist nodes.
type NodeKind uint8

// Node kinds: primary input, constant 0/1, combinational gate, and the
// Q output of a flip-flop.
const (
	KindInput NodeKind = iota
	KindConst0
	KindConst1
	KindGate
	KindFF
)

// NodeID indexes a node in a Netlist. NoNode marks absent connections.
type NodeID int32

// NoNode is the invalid node id.
const NoNode NodeID = -1

// FFID indexes a flip-flop in a Netlist. NoFF marks absence.
type FFID int32

// NoFF is the invalid flip-flop id.
const NoFF FFID = -1

// Node is one vertex of the combinational netlist graph.
type Node struct {
	Kind  NodeKind
	Gate  GateType // valid when Kind == KindGate
	Fanin []NodeID // gate inputs; empty otherwise
	Name  string   // optional
}

// FF is a D flip-flop. Node is its Q output node; D is the node feeding
// its next state (NoNode until wired). Module indexes Netlist.Modules.
type FF struct {
	Node   NodeID
	D      NodeID
	Name   string
	Module int
}

// Netlist is a sequential circuit. The zero value is an empty circuit
// ready for use.
type Netlist struct {
	Nodes   []Node
	FFs     []FF
	Inputs  []NodeID
	Modules []string

	ffOfNode []FFID // node -> flip-flop id, NoFF for non-FF nodes
}

// New returns an empty netlist.
func New() *Netlist { return &Netlist{} }

func (n *Netlist) addNode(nd Node) NodeID {
	id := NodeID(len(n.Nodes))
	n.Nodes = append(n.Nodes, nd)
	n.ffOfNode = append(n.ffOfNode, NoFF)
	return id
}

// AddModule registers a named module and returns its index.
func (n *Netlist) AddModule(name string) int {
	n.Modules = append(n.Modules, name)
	return len(n.Modules) - 1
}

// AddInput adds a primary input node.
func (n *Netlist) AddInput(name string) NodeID {
	id := n.addNode(Node{Kind: KindInput, Name: name})
	n.Inputs = append(n.Inputs, id)
	return id
}

// AddConst adds a constant node.
func (n *Netlist) AddConst(v bool) NodeID {
	k := KindConst0
	if v {
		k = KindConst1
	}
	return n.addNode(Node{Kind: k})
}

// AddGate adds a combinational gate. Arity constraints: Not and Buf are
// unary, Mux and Maj ternary, the rest need at least one input.
func (n *Netlist) AddGate(g GateType, fanin ...NodeID) NodeID {
	switch g {
	case Not, Buf:
		if len(fanin) != 1 {
			panic(fmt.Sprintf("netlist: %v requires exactly 1 input, got %d", g, len(fanin)))
		}
	case Mux, Maj:
		if len(fanin) != 3 {
			panic(fmt.Sprintf("netlist: %v requires exactly 3 inputs, got %d", g, len(fanin)))
		}
	default:
		if len(fanin) == 0 {
			panic(fmt.Sprintf("netlist: %v requires at least 1 input", g))
		}
	}
	for _, f := range fanin {
		if f < 0 || int(f) >= len(n.Nodes) {
			panic(fmt.Sprintf("netlist: fanin %d out of range", f))
		}
	}
	cp := make([]NodeID, len(fanin))
	copy(cp, fanin)
	return n.addNode(Node{Kind: KindGate, Gate: g, Fanin: cp})
}

// AddFF adds a flip-flop in the given module and returns its id. Its D
// input starts unwired (NoNode) so that sequential loops can be built;
// wire it with SetFFInput.
func (n *Netlist) AddFF(name string, module int) FFID {
	node := n.addNode(Node{Kind: KindFF, Name: name})
	id := FFID(len(n.FFs))
	n.FFs = append(n.FFs, FF{Node: node, D: NoNode, Name: name, Module: module})
	n.ffOfNode[node] = id
	return id
}

// SetFFInput wires the D input of a flip-flop.
func (n *Netlist) SetFFInput(ff FFID, d NodeID) {
	if d < 0 || int(d) >= len(n.Nodes) {
		panic(fmt.Sprintf("netlist: D node %d out of range", d))
	}
	n.FFs[ff].D = d
}

// FFOfNode returns the flip-flop whose Q output is the given node, or
// NoFF.
func (n *Netlist) FFOfNode(id NodeID) FFID {
	if id < 0 || int(id) >= len(n.ffOfNode) {
		return NoFF
	}
	return n.ffOfNode[id]
}

// NumNodes returns the number of nodes.
func (n *Netlist) NumNodes() int { return len(n.Nodes) }

// NumFFs returns the number of flip-flops.
func (n *Netlist) NumFFs() int { return len(n.FFs) }

// NumGates returns the number of combinational gates.
func (n *Netlist) NumGates() int {
	c := 0
	for i := range n.Nodes {
		if n.Nodes[i].Kind == KindGate {
			c++
		}
	}
	return c
}

// Validate checks structural sanity: every FF is wired, every fanin
// reference is valid, and the combinational part (treating FF outputs
// and inputs as sources) is acyclic. It returns the first problem found.
func (n *Netlist) Validate() error {
	for i := range n.FFs {
		if n.FFs[i].D == NoNode {
			return fmt.Errorf("netlist: flip-flop %q (ff %d) has unwired D input", n.FFs[i].Name, i)
		}
		if m := n.FFs[i].Module; m < 0 || m >= len(n.Modules) {
			if len(n.Modules) > 0 || m != 0 {
				return fmt.Errorf("netlist: flip-flop %q references module %d of %d", n.FFs[i].Name, m, len(n.Modules))
			}
		}
	}
	// Combinational cycle detection with an iterative DFS.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]uint8, len(n.Nodes))
	var stack []NodeID
	for start := range n.Nodes {
		if color[start] != white || n.Nodes[start].Kind != KindGate {
			continue
		}
		stack = append(stack[:0], NodeID(start))
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			nd := &n.Nodes[id]
			if color[id] == white {
				color[id] = gray
				if nd.Kind == KindGate {
					for _, f := range nd.Fanin {
						switch color[f] {
						case gray:
							return fmt.Errorf("netlist: combinational cycle through node %d", f)
						case white:
							if n.Nodes[f].Kind == KindGate {
								stack = append(stack, f)
							} else {
								color[f] = black
							}
						}
					}
				}
			} else {
				color[id] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// TopoOrder returns the gate nodes in a topological order (fanin before
// fanout). FF outputs, inputs and constants are sources and not listed.
func (n *Netlist) TopoOrder() []NodeID {
	order := make([]NodeID, 0, len(n.Nodes))
	state := make([]uint8, len(n.Nodes)) // 0 new, 1 expanded, 2 done
	var stack []NodeID
	for start := range n.Nodes {
		if state[start] != 0 || n.Nodes[start].Kind != KindGate {
			continue
		}
		stack = append(stack[:0], NodeID(start))
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			switch state[id] {
			case 0:
				state[id] = 1
				for _, f := range n.Nodes[id].Fanin {
					if state[f] == 0 && n.Nodes[f].Kind == KindGate {
						stack = append(stack, f)
					}
				}
			case 1:
				state[id] = 2
				order = append(order, id)
				stack = stack[:len(stack)-1]
			default:
				stack = stack[:len(stack)-1]
			}
		}
	}
	return order
}

// Cone computes the combinational fan-in cone of root: the gate nodes of
// the cone in topological order, and the leaves (inputs, constants and
// FF outputs) it depends on.
func (n *Netlist) Cone(root NodeID) (gates []NodeID, leaves []NodeID) {
	state := make(map[NodeID]uint8, 32)
	var stack []NodeID
	push := func(id NodeID) {
		if state[id] != 0 {
			return
		}
		if n.Nodes[id].Kind != KindGate {
			state[id] = 2
			leaves = append(leaves, id)
			return
		}
		stack = append(stack, id)
	}
	push(root)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		switch state[id] {
		case 0:
			state[id] = 1
			for _, f := range n.Nodes[id].Fanin {
				if state[f] == 0 {
					push(f)
				}
			}
		case 1:
			state[id] = 2
			gates = append(gates, id)
			stack = stack[:len(stack)-1]
		default:
			stack = stack[:len(stack)-1]
		}
	}
	return gates, leaves
}

// SupportFFs returns the flip-flops in the structural support of root
// (i.e. FFs whose Q output is a leaf of root's fan-in cone).
func (n *Netlist) SupportFFs(root NodeID) []FFID {
	_, leaves := n.Cone(root)
	var ffs []FFID
	for _, l := range leaves {
		if ff := n.FFOfNode(l); ff != NoFF {
			ffs = append(ffs, ff)
		}
	}
	return ffs
}

// EvalGate computes the gate function over the given input values.
func EvalGate(g GateType, in []bool) bool {
	switch g {
	case And, Nand:
		v := true
		for _, x := range in {
			v = v && x
		}
		if g == Nand {
			return !v
		}
		return v
	case Or, Nor:
		v := false
		for _, x := range in {
			v = v || x
		}
		if g == Nor {
			return !v
		}
		return v
	case Xor, Xnor:
		v := false
		for _, x := range in {
			v = v != x
		}
		if g == Xnor {
			return !v
		}
		return v
	case Not:
		return !in[0]
	case Buf:
		return in[0]
	case Mux:
		if in[0] {
			return in[2]
		}
		return in[1]
	case Maj:
		c := 0
		for _, x := range in {
			if x {
				c++
			}
		}
		return c >= 2
	}
	panic(fmt.Sprintf("netlist: unknown gate type %d", g))
}

// Simulator evaluates a netlist cycle by cycle.
type Simulator struct {
	n      *Netlist
	order  []NodeID
	values []bool // per node
	state  []bool // per FF
	inputs []bool // per primary input (by position in n.Inputs)
}

// NewSimulator returns a simulator with all state and inputs at 0.
func NewSimulator(n *Netlist) *Simulator {
	return &Simulator{
		n:      n,
		order:  n.TopoOrder(),
		values: make([]bool, len(n.Nodes)),
		state:  make([]bool, len(n.FFs)),
		inputs: make([]bool, len(n.Inputs)),
	}
}

// SetFF sets the current state of a flip-flop.
func (s *Simulator) SetFF(ff FFID, v bool) { s.state[ff] = v }

// FFValue returns the current state of a flip-flop.
func (s *Simulator) FFValue(ff FFID) bool { return s.state[ff] }

// SetInput sets primary input i (position in Netlist.Inputs).
func (s *Simulator) SetInput(i int, v bool) { s.inputs[i] = v }

// Eval evaluates all combinational nodes from the current FF state and
// input values. It returns the value of every node.
func (s *Simulator) Eval() []bool {
	for i, id := range s.n.Inputs {
		s.values[id] = s.inputs[i]
	}
	for i := range s.n.FFs {
		s.values[s.n.FFs[i].Node] = s.state[i]
	}
	for id := range s.n.Nodes {
		switch s.n.Nodes[id].Kind {
		case KindConst0:
			s.values[id] = false
		case KindConst1:
			s.values[id] = true
		}
	}
	var buf [8]bool
	for _, id := range s.order {
		nd := &s.n.Nodes[id]
		in := buf[:0]
		for _, f := range nd.Fanin {
			in = append(in, s.values[f])
		}
		s.values[id] = EvalGate(nd.Gate, in)
	}
	return s.values
}

// Step evaluates the circuit and clocks every flip-flop once.
func (s *Simulator) Step() {
	s.Eval()
	next := make([]bool, len(s.state))
	for i := range s.n.FFs {
		next[i] = s.values[s.n.FFs[i].D]
	}
	copy(s.state, next)
}

// NodeValue returns the value of a node after the last Eval/Step.
func (s *Simulator) NodeValue(id NodeID) bool { return s.values[id] }
