package netlist

import "testing"

// canonFixture builds a small fixed circuit: two modules, one input,
// one AND gate, two flip-flops.
func canonFixture() *Netlist {
	n := New()
	n.AddModule("m0")
	n.AddModule("m1")
	in := n.AddInput("pi0")
	f0 := n.AddFF("m0.f0", 0)
	f1 := n.AddFF("m1.f0", 1)
	g := n.AddGate(And, in, n.FFs[f0].Node)
	n.SetFFInput(f0, in)
	n.SetFFInput(f1, g)
	return n
}

// goldenNetlistHash pins the canonical digest of canonFixture under
// CanonVersion "rsnsec.canon/v1". The digest is the analysis cache key
// of internal/serve: if this test fails, the canonical encoding changed
// and CanonVersion MUST be bumped (which rewrites this constant) so old
// persisted results are not aliased.
const goldenNetlistHash = "c35e9c0b5942b656d2e1da20b5b6ca96fe1be1ffe621dc2f43a5eb3b19a60c88"

func TestCanonicalHashGolden(t *testing.T) {
	got := CanonicalHash(canonFixture())
	if got != goldenNetlistHash {
		t.Fatalf("canonical netlist hash drifted:\n got  %s\n want %s\nbump CanonVersion if the encoding change is intended", got, goldenNetlistHash)
	}
}

func TestCanonicalHashStable(t *testing.T) {
	a, b := CanonicalHash(canonFixture()), CanonicalHash(canonFixture())
	if a != b {
		t.Fatalf("identical builds hash differently: %s vs %s", a, b)
	}
}

func TestCanonicalHashSensitivity(t *testing.T) {
	base := CanonicalHash(canonFixture())
	mutations := map[string]func(n *Netlist){
		"rename node":   func(n *Netlist) { n.Nodes[0].Name = "pi0x" },
		"rename ff":     func(n *Netlist) { n.FFs[0].Name = "other" },
		"move module":   func(n *Netlist) { n.FFs[1].Module = 0 },
		"rewire d":      func(n *Netlist) { n.FFs[1].D = n.FFs[0].Node },
		"gate type":     func(n *Netlist) { n.Nodes[len(n.Nodes)-1].Gate = Or },
		"module rename": func(n *Netlist) { n.Modules[1] = "m1x" },
	}
	for name, mutate := range mutations {
		n := canonFixture()
		mutate(n)
		if got := CanonicalHash(n); got == base {
			t.Errorf("%s: hash unchanged after mutation", name)
		}
	}
}

// TestHasherFraming checks that adjacent fields cannot alias: the
// framed encoding distinguishes ("ab","c") from ("a","bc") and an
// empty string from an absent one.
func TestHasherFraming(t *testing.T) {
	sum := func(parts ...string) string {
		h := NewHasher()
		for _, p := range parts {
			h.Str(p)
		}
		return h.SumHex()
	}
	if sum("ab", "c") == sum("a", "bc") {
		t.Error(`("ab","c") aliases ("a","bc")`)
	}
	if sum("a") == sum("a", "") {
		t.Error(`("a") aliases ("a","")`)
	}
	h1, h2 := NewHasher(), NewHasher()
	h1.Int(1)
	h2.Uint(1)
	if h1.SumHex() == h2.SumHex() {
		t.Error("Int(1) aliases Uint(1)")
	}
}

// TestHasherSumIsIncremental checks Sum does not finalize the stream.
func TestHasherSumIsIncremental(t *testing.T) {
	h := NewHasher()
	h.Str("a")
	first := h.SumHex()
	h.Str("b")
	second := h.SumHex()
	if first == second {
		t.Fatal("Sum after more writes did not change")
	}
	h2 := NewHasher()
	h2.Str("a")
	h2.Str("b")
	if h2.SumHex() != second {
		t.Fatal("Sum mid-stream perturbed the digest")
	}
}
