package netlist

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
)

// CanonVersion is the versioned prefix of the canonical serialization.
// It is hashed before any payload, so digests of different encoding
// generations can never collide. Bump the suffix on any change to the
// framing or to a structure's AppendCanonical field order — the digest
// is a cache key (internal/serve addresses analysis results by it), and
// a silent format drift would alias incompatible results.
const CanonVersion = "rsnsec.canon/v1"

// Hasher computes the canonical SHA-256 digest of analysis inputs.
//
// The encoding is framed, not concatenative: every primitive writes a
// one-byte tag followed by a fixed- or length-prefixed payload, so
// adjacent fields cannot alias each other ("ab","c" hashes differently
// from "a","bc") and absent optional parts hash differently from empty
// ones. Structures serialize their fields in a fixed, documented order
// (netlist.Netlist, rsn.Network and secspec.Spec implement
// AppendCanonical); maps never feed the hasher.
type Hasher struct {
	h   hash.Hash
	buf [binary.MaxVarintLen64 + 1]byte
}

// NewHasher returns a hasher seeded with the CanonVersion prefix.
func NewHasher() *Hasher {
	h := &Hasher{h: sha256.New()}
	h.Str(CanonVersion)
	return h
}

// writeTagged writes tag, then payload.
func (h *Hasher) writeTagged(tag byte, payload []byte) {
	h.buf[0] = tag
	h.h.Write(h.buf[:1])
	h.h.Write(payload)
}

// Str hashes a length-prefixed string.
func (h *Hasher) Str(s string) {
	h.buf[0] = 'S'
	n := binary.PutUvarint(h.buf[1:], uint64(len(s)))
	h.h.Write(h.buf[:1+n])
	h.h.Write([]byte(s))
}

// Int hashes a signed integer.
func (h *Hasher) Int(v int64) {
	h.buf[0] = 'I'
	n := binary.PutVarint(h.buf[1:], v)
	h.h.Write(h.buf[:1+n])
}

// Uint hashes an unsigned integer.
func (h *Hasher) Uint(v uint64) {
	h.buf[0] = 'U'
	n := binary.PutUvarint(h.buf[1:], v)
	h.h.Write(h.buf[:1+n])
}

// Float hashes a float64 by its IEEE-754 bit pattern, so canonical
// digests never depend on decimal formatting.
func (h *Hasher) Float(v float64) {
	var p [8]byte
	binary.BigEndian.PutUint64(p[:], math.Float64bits(v))
	h.writeTagged('F', p[:])
}

// Bool hashes a boolean.
func (h *Hasher) Bool(v bool) {
	if v {
		h.writeTagged('B', []byte{1})
	} else {
		h.writeTagged('B', []byte{0})
	}
}

// Section marks the start of a named substructure. Every
// AppendCanonical implementation opens with a Section naming its type,
// so digests of different structure kinds can never collide even when
// their field payloads happen to agree.
func (h *Hasher) Section(name string) {
	h.buf[0] = 'T'
	h.h.Write(h.buf[:1])
	h.Str(name)
}

// List marks a list of n elements; the elements follow.
func (h *Hasher) List(n int) {
	h.buf[0] = 'L'
	h.h.Write(h.buf[:1])
	h.Uint(uint64(n))
}

// Sum returns the digest of everything hashed so far. The hasher
// remains usable; later writes extend the stream.
func (h *Hasher) Sum() [sha256.Size]byte {
	var out [sha256.Size]byte
	h.h.Sum(out[:0])
	return out
}

// SumHex returns Sum as a lowercase hex string — the content-address
// form used as store key and HTTP-visible identifier.
func (h *Hasher) SumHex() string {
	sum := h.Sum()
	return hex.EncodeToString(sum[:])
}

// AppendCanonical hashes the netlist in canonical form: node table
// (kind, gate, fan-in, name) in id order, flip-flop table (node, D,
// module, name) in id order, primary inputs, then module names. All
// orders are the construction orders the ids already fix, so two
// structurally identical netlists built the same way hash identically
// regardless of how they were assembled in memory.
func (n *Netlist) AppendCanonical(h *Hasher) {
	h.Section("netlist")
	h.List(len(n.Nodes))
	for i := range n.Nodes {
		nd := &n.Nodes[i]
		h.Int(int64(nd.Kind))
		h.Int(int64(nd.Gate))
		h.Str(nd.Name)
		h.List(len(nd.Fanin))
		for _, f := range nd.Fanin {
			h.Int(int64(f))
		}
	}
	h.List(len(n.FFs))
	for i := range n.FFs {
		ff := &n.FFs[i]
		h.Int(int64(ff.Node))
		h.Int(int64(ff.D))
		h.Int(int64(ff.Module))
		h.Str(ff.Name)
	}
	h.List(len(n.Inputs))
	for _, in := range n.Inputs {
		h.Int(int64(in))
	}
	h.List(len(n.Modules))
	for _, m := range n.Modules {
		h.Str(m)
	}
}

// CanonicalHash returns the canonical digest of one netlist alone.
func CanonicalHash(n *Netlist) string {
	h := NewHasher()
	n.AppendCanonical(h)
	return h.SumHex()
}
