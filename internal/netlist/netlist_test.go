package netlist

import (
	"math/rand"
	"testing"
)

// buildToy returns a 2-FF circuit: f1' = f1 XOR in0, f2' = f1 AND f2.
func buildToy() (*Netlist, FFID, FFID, NodeID) {
	n := New()
	m := n.AddModule("toy")
	in0 := n.AddInput("in0")
	f1 := n.AddFF("f1", m)
	f2 := n.AddFF("f2", m)
	x := n.AddGate(Xor, n.FFs[f1].Node, in0)
	a := n.AddGate(And, n.FFs[f1].Node, n.FFs[f2].Node)
	n.SetFFInput(f1, x)
	n.SetFFInput(f2, a)
	return n, f1, f2, in0
}

func TestValidateOK(t *testing.T) {
	n, _, _, _ := buildToy()
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateUnwiredFF(t *testing.T) {
	n := New()
	m := n.AddModule("m")
	n.AddFF("f", m)
	if err := n.Validate(); err == nil {
		t.Fatal("expected error for unwired FF")
	}
}

func TestValidateCombinationalCycle(t *testing.T) {
	n := New()
	m := n.AddModule("m")
	f := n.AddFF("f", m)
	// Build a <- b, b <- a combinational cycle by patching fanin.
	a := n.AddGate(Buf, n.FFs[f].Node)
	b := n.AddGate(Buf, a)
	n.Nodes[a].Fanin[0] = b
	n.SetFFInput(f, a)
	if err := n.Validate(); err == nil {
		t.Fatal("expected combinational cycle error")
	}
}

func TestSequentialLoopAllowed(t *testing.T) {
	// f1 -> f2 -> f1 through gates is fine (cycle crosses FFs).
	n := New()
	m := n.AddModule("m")
	f1 := n.AddFF("f1", m)
	f2 := n.AddFF("f2", m)
	n.SetFFInput(f1, n.AddGate(Not, n.FFs[f2].Node))
	n.SetFFInput(f2, n.AddGate(Buf, n.FFs[f1].Node))
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestEvalGateTruth(t *testing.T) {
	cases := []struct {
		g    GateType
		in   []bool
		want bool
	}{
		{And, []bool{true, true}, true},
		{And, []bool{true, false}, false},
		{Or, []bool{false, false}, false},
		{Or, []bool{false, true}, true},
		{Nand, []bool{true, true}, false},
		{Nor, []bool{false, false}, true},
		{Xor, []bool{true, true}, false},
		{Xor, []bool{true, false, false}, true},
		{Xnor, []bool{true, false}, false},
		{Not, []bool{true}, false},
		{Buf, []bool{true}, true},
		{Mux, []bool{false, true, false}, true}, // sel=0 -> lo
		{Mux, []bool{true, true, false}, false}, // sel=1 -> hi
		{Maj, []bool{true, true, false}, true},
		{Maj, []bool{true, false, false}, false},
	}
	for _, c := range cases {
		if got := EvalGate(c.g, c.in); got != c.want {
			t.Errorf("EvalGate(%v, %v) = %v, want %v", c.g, c.in, got, c.want)
		}
	}
}

func TestGateTypeString(t *testing.T) {
	if And.String() != "AND" || Mux.String() != "MUX" {
		t.Fatal("GateType.String mismatch")
	}
}

func TestAddGateArityPanics(t *testing.T) {
	n := New()
	in := n.AddInput("i")
	for _, f := range []func(){
		func() { n.AddGate(Not, in, in) },
		func() { n.AddGate(Mux, in, in) },
		func() { n.AddGate(And) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSimulatorToy(t *testing.T) {
	n, f1, f2, _ := buildToy()
	s := NewSimulator(n)
	s.SetFF(f1, true)
	s.SetFF(f2, true)
	s.SetInput(0, false)
	s.Step()
	// f1' = 1 xor 0 = 1; f2' = 1 and 1 = 1
	if !s.FFValue(f1) || !s.FFValue(f2) {
		t.Fatalf("step1: f1=%v f2=%v", s.FFValue(f1), s.FFValue(f2))
	}
	s.SetInput(0, true)
	s.Step()
	// f1' = 1 xor 1 = 0; f2' = 1 and 1 = 1
	if s.FFValue(f1) || !s.FFValue(f2) {
		t.Fatalf("step2: f1=%v f2=%v", s.FFValue(f1), s.FFValue(f2))
	}
	s.Step()
	// f1' = 0 xor 1 = 1; f2' = 0 and 1 = 0
	if !s.FFValue(f1) || s.FFValue(f2) {
		t.Fatalf("step3: f1=%v f2=%v", s.FFValue(f1), s.FFValue(f2))
	}
}

func TestSimulatorShiftRegister(t *testing.T) {
	n := New()
	m := n.AddModule("sr")
	in := n.AddInput("si")
	const depth = 5
	ffs := make([]FFID, depth)
	for i := range ffs {
		ffs[i] = n.AddFF("sr", m)
	}
	n.SetFFInput(ffs[0], in)
	for i := 1; i < depth; i++ {
		n.SetFFInput(ffs[i], n.FFs[ffs[i-1]].Node)
	}
	s := NewSimulator(n)
	pattern := []bool{true, false, true, true, false}
	for _, b := range pattern {
		s.SetInput(0, b)
		s.Step()
	}
	// After len(pattern) steps, ffs[i] holds pattern[len-1-i].
	for i := 0; i < depth; i++ {
		want := pattern[len(pattern)-1-i]
		if got := s.FFValue(ffs[i]); got != want {
			t.Fatalf("ff[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestTopoOrderProperty(t *testing.T) {
	g := Generate(DefaultGenConfig([]string{"a", "b", "c"}, 4), 11)
	n := g.N
	order := n.TopoOrder()
	pos := make(map[NodeID]int)
	for i, id := range order {
		pos[id] = i
	}
	seen := 0
	for _, id := range order {
		for _, f := range n.Nodes[id].Fanin {
			if n.Nodes[f].Kind == KindGate {
				if pos[f] >= pos[id] {
					t.Fatalf("fanin %d not before gate %d", f, id)
				}
				seen++
			}
		}
	}
	if seen == 0 {
		t.Fatal("degenerate generated circuit: no gate-to-gate edges")
	}
	if len(order) != n.NumGates() {
		t.Fatalf("topo order covers %d of %d gates", len(order), n.NumGates())
	}
}

func TestConeAndSupport(t *testing.T) {
	n, f1, f2, in0 := buildToy()
	// Support of f2.D is {f1, f2}; support of f1.D is {f1} plus input.
	sup2 := n.SupportFFs(n.FFs[f2].D)
	if len(sup2) != 2 {
		t.Fatalf("support of f2.D: %v", sup2)
	}
	sup1 := n.SupportFFs(n.FFs[f1].D)
	if len(sup1) != 1 || sup1[0] != f1 {
		t.Fatalf("support of f1.D: %v", sup1)
	}
	gates, leaves := n.Cone(n.FFs[f1].D)
	if len(gates) != 1 {
		t.Fatalf("cone gates: %v", gates)
	}
	foundInput := false
	for _, l := range leaves {
		if l == in0 {
			foundInput = true
		}
	}
	if !foundInput {
		t.Fatalf("cone leaves missing input: %v", leaves)
	}
}

func TestFFOfNode(t *testing.T) {
	n, f1, _, in0 := buildToy()
	if got := n.FFOfNode(n.FFs[f1].Node); got != f1 {
		t.Fatalf("FFOfNode = %v, want %v", got, f1)
	}
	if got := n.FFOfNode(in0); got != NoFF {
		t.Fatalf("FFOfNode(input) = %v, want NoFF", got)
	}
	if got := n.FFOfNode(NoNode); got != NoFF {
		t.Fatalf("FFOfNode(NoNode) = %v, want NoFF", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenConfig([]string{"m0", "m1"}, 3)
	a := Generate(cfg, 42)
	b := Generate(cfg, 42)
	if a.N.NumNodes() != b.N.NumNodes() || a.N.NumFFs() != b.N.NumFFs() {
		t.Fatal("same seed must generate identical sizes")
	}
	for i := range a.N.Nodes {
		na, nb := a.N.Nodes[i], b.N.Nodes[i]
		if na.Kind != nb.Kind || na.Gate != nb.Gate || len(na.Fanin) != len(nb.Fanin) {
			t.Fatalf("node %d differs between same-seed runs", i)
		}
	}
	c := Generate(cfg, 43)
	if c.N.NumNodes() == a.N.NumNodes() && c.N.NumGates() == a.N.NumGates() {
		// Extremely unlikely but not impossible; only sizes equal is
		// acceptable, identical structure is suspicious.
		same := true
		for i := range a.N.Nodes {
			if len(a.N.Nodes[i].Fanin) != len(c.N.Nodes[i].Fanin) {
				same = false
				break
			}
			for j := range a.N.Nodes[i].Fanin {
				if a.N.Nodes[i].Fanin[j] != c.N.Nodes[i].Fanin[j] {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatal("different seeds generated identical circuits")
		}
	}
}

func TestGeneratePartitioning(t *testing.T) {
	cfg := DefaultGenConfig([]string{"a", "b", "c"}, 5)
	cfg.InternalFFs = 3
	g := Generate(cfg, 7)
	if len(g.PortFFs) != 3 {
		t.Fatalf("PortFFs modules = %d", len(g.PortFFs))
	}
	total := 0
	for _, p := range g.PortFFs {
		if len(p) != 5 {
			t.Fatalf("module port FFs = %d, want 5", len(p))
		}
		total += len(p)
	}
	if len(g.InternalFFs) != 9 {
		t.Fatalf("internal FFs = %d, want 9", len(g.InternalFFs))
	}
	if g.N.NumFFs() != total+len(g.InternalFFs) {
		t.Fatalf("FF count %d != ports %d + internals %d", g.N.NumFFs(), total, len(g.InternalFFs))
	}
	// Port and internal sets must be disjoint.
	seen := map[FFID]bool{}
	for _, p := range g.PortFFs {
		for _, f := range p {
			seen[f] = true
		}
	}
	for _, f := range g.InternalFFs {
		if seen[f] {
			t.Fatalf("FF %d is both port and internal", f)
		}
	}
}

func TestGenerateValid(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := Generate(DefaultGenConfig([]string{"x", "y"}, 4), seed)
		if err := g.N.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestMaskedPathIsNotFunctionalInSimulation(t *testing.T) {
	// Build XOR(s, XOR(s, t)) explicitly and verify it always equals t.
	n := New()
	m := n.AddModule("m")
	s := n.AddFF("s", m)
	c := n.AddFF("c", m)
	o := n.AddFF("o", m)
	inner := n.AddGate(Xor, n.FFs[s].Node, n.FFs[c].Node)
	outer := n.AddGate(Xor, n.FFs[s].Node, inner)
	n.SetFFInput(o, outer)
	n.SetFFInput(s, n.FFs[s].Node)
	n.SetFFInput(c, n.FFs[c].Node)
	sim := NewSimulator(n)
	for _, sv := range []bool{false, true} {
		for _, cv := range []bool{false, true} {
			sim.SetFF(s, sv)
			sim.SetFF(c, cv)
			sim.Eval()
			if got := sim.NodeValue(outer); got != cv {
				t.Fatalf("masked value: s=%v c=%v got %v want %v", sv, cv, got, cv)
			}
		}
	}
}

func BenchmarkSimulateGenerated(b *testing.B) {
	g := Generate(DefaultGenConfig([]string{"a", "b", "c", "d"}, 16), 3)
	sim := NewSimulator(g.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}

func TestGateDualityProperties(t *testing.T) {
	check := func(in []bool) bool {
		return EvalGate(Nand, in) == !EvalGate(And, in) &&
			EvalGate(Nor, in) == !EvalGate(Or, in) &&
			EvalGate(Xnor, in) == !EvalGate(Xor, in)
	}
	for m := 0; m < 16; m++ {
		in := []bool{m&1 == 1, m&2 == 2, m&4 == 4, m&8 == 8}
		for k := 1; k <= 4; k++ {
			if !check(in[:k]) {
				t.Fatalf("duality violated for %v", in[:k])
			}
		}
	}
}

func TestMuxMajIdentities(t *testing.T) {
	for m := 0; m < 8; m++ {
		s, a, b := m&1 == 1, m&2 == 2, m&4 == 4
		// MUX(s, a, a) == a
		if EvalGate(Mux, []bool{s, a, a}) != a {
			t.Fatal("mux identity")
		}
		// MAJ(a, a, b) == a
		if EvalGate(Maj, []bool{a, a, b}) != a {
			t.Fatal("maj absorption")
		}
		_ = b
	}
}

func TestSimulatorDeterminism(t *testing.T) {
	g := Generate(DefaultGenConfig([]string{"x", "y"}, 5), 31)
	s1 := NewSimulator(g.N)
	s2 := NewSimulator(g.N)
	rng1 := rand.New(rand.NewSource(9))
	rng2 := rand.New(rand.NewSource(9))
	for step := 0; step < 50; step++ {
		for i := range g.N.Inputs {
			s1.SetInput(i, rng1.Intn(2) == 1)
			s2.SetInput(i, rng2.Intn(2) == 1)
		}
		s1.Step()
		s2.Step()
	}
	for f := 0; f < g.N.NumFFs(); f++ {
		if s1.FFValue(FFID(f)) != s2.FFValue(FFID(f)) {
			t.Fatal("simulation not deterministic")
		}
	}
}
