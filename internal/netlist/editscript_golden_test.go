// Golden-hash coverage for the rsn.EditScript canonical encoding. It
// lives here (as an external test package — netlist is below rsn in
// the import graph) next to the netlist golden hash because both pin
// the same contract: content keys derived under CanonVersion must not
// drift silently. Delta analysis keys are H(base-key, script), so an
// encoding change aliases previously stored delta reports unless
// CanonVersion is bumped.
package netlist_test

import (
	"testing"

	"repro/internal/rsn"
)

// goldenEditScriptHash pins the canonical digest of a representative
// edit script under CanonVersion "rsnsec.canon/v1". If this test
// fails, the script encoding changed and CanonVersion MUST be bumped
// (which rewrites this constant) so old persisted delta results are
// not aliased.
const goldenEditScriptHash = "1598e5152c94d06070b2ae7ddd6afdccac4bd0433fecff531c3fa71d6fccd09f"

func goldenScript() *rsn.EditScript {
	return &rsn.EditScript{
		Base: "net",
		Ops: []rsn.EditOp{
			{Op: rsn.OpCutReconnect, Pin: "R2", Src: "SI"},
			{Op: rsn.OpConnect, Pin: "M1", PinIdx: 1, Src: "R0"},
			{Op: rsn.OpAddRegister, Pin: "SO", Src: "R2", Name: "n", Len: 3, Module: 1},
		},
	}
}

func TestEditScriptCanonicalHashGolden(t *testing.T) {
	got, err := goldenScript().CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if got != goldenEditScriptHash {
		t.Fatalf("canonical edit-script hash drifted:\n got  %s\n want %s\nbump CanonVersion if the encoding change is intended", got, goldenEditScriptHash)
	}
}

// TestEditScriptHashFieldOrderIndependent feeds the same script through
// two JSON spellings with reordered fields and mixed-case references:
// the canonical hash depends only on normalized field values, never on
// the wire order the submission happened to use.
func TestEditScriptHashFieldOrderIndependent(t *testing.T) {
	a := []byte(`{"base":"net","ops":[
		{"op":"cut-reconnect","pin":"R2","src":"SI"},
		{"op":"connect","pin":"M1","pin_idx":1,"src":"R0"},
		{"op":"add-register","pin":"SO","src":"R2","name":"n","len":3,"module":1}]}`)
	b := []byte(`{"ops":[
		{"src":"si","pin":"r2","op":"CUT-RECONNECT"},
		{"pin_idx":1,"src":"r0","op":"Connect","pin":"m1"},
		{"module":1,"len":3,"name":"n","src":"r2","pin":"so","op":"add-register"}],
		"base":"net"}`)
	sa, err := rsn.ParseEditScript(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := rsn.ParseEditScript(b)
	if err != nil {
		t.Fatal(err)
	}
	ha, err := sa.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := sb.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("field order changed the hash:\n a %s\n b %s", ha, hb)
	}
	if ha != goldenEditScriptHash {
		t.Fatalf("parsed script hash %s does not match the golden constant", ha)
	}
}
