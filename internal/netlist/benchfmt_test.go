package netlist

import (
	"math/rand"
	"strings"
	"testing"
)

const benchSample = `
# toy circuit
INPUT(pi0)
OUTPUT(g2)
# @module crypto
f1 = DFF(d1)
# @module plain
f2 = DFF(g2)
d1 = XOR(f1, pi0)
g2 = AND(f1, f2)
`

func TestParseBenchSample(t *testing.T) {
	n, err := ParseBench(strings.NewReader(benchSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Inputs) != 1 || n.NumFFs() != 2 || n.NumGates() != 2 {
		t.Fatalf("sizes: in=%d ff=%d gates=%d", len(n.Inputs), n.NumFFs(), n.NumGates())
	}
	if len(n.Modules) != 2 || n.Modules[0] != "crypto" || n.Modules[1] != "plain" {
		t.Fatalf("modules: %v", n.Modules)
	}
	if n.FFs[0].Module != 0 || n.FFs[1].Module != 1 {
		t.Fatal("module assignment wrong")
	}
	// d1 = XOR(f1, pi0): check behaviour.
	sim := NewSimulator(n)
	sim.SetFF(0, true)
	sim.SetInput(0, true)
	sim.Step()
	if sim.FFValue(0) {
		t.Fatal("f1' = 1 xor 1 must be 0")
	}
}

func TestBenchRoundTripToy(t *testing.T) {
	n1, err := ParseBench(strings.NewReader(benchSample))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteBench(&sb, n1); err != nil {
		t.Fatal(err)
	}
	n2, err := ParseBench(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	if n2.NumFFs() != n1.NumFFs() || n2.NumGates() != n1.NumGates() || len(n2.Inputs) != len(n1.Inputs) {
		t.Fatal("round trip changed sizes")
	}
}

// TestBenchRoundTripBehaviour verifies functional equivalence of a
// generated circuit across a write/parse round trip by co-simulation.
func TestBenchRoundTripBehaviour(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 10; iter++ {
		g := Generate(DefaultGenConfig([]string{"a", "b"}, 4), rng.Int63())
		n1 := g.N
		var sb strings.Builder
		if err := WriteBench(&sb, n1); err != nil {
			t.Fatal(err)
		}
		n2, err := ParseBench(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if n2.NumFFs() != n1.NumFFs() {
			t.Fatal("FF count differs")
		}
		// Map FFs by name (order may differ due to module grouping).
		byName := map[string]FFID{}
		for i := range n2.FFs {
			byName[n2.FFs[i].Name] = FFID(i)
		}
		s1 := NewSimulator(n1)
		s2 := NewSimulator(n2)
		for step := 0; step < 30; step++ {
			for i := range n1.Inputs {
				v := rng.Intn(2) == 1
				s1.SetInput(i, v)
				s2.SetInput(i, v)
			}
			s1.Step()
			s2.Step()
			for i := range n1.FFs {
				j, ok := byName[n1.FFs[i].Name]
				if !ok {
					t.Fatalf("FF %q lost in round trip", n1.FFs[i].Name)
				}
				if s1.FFValue(FFID(i)) != s2.FFValue(j) {
					t.Fatalf("iter %d step %d: FF %q diverged", iter, step, n1.FFs[i].Name)
				}
			}
		}
	}
}

func TestParseBenchErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"garbage", "hello world\n"},
		{"bad function", "g = FROB(a)\n"},
		{"dff arity", "f = DFF(a, b)\n"},
		{"undefined", "INPUT(a)\ng = AND(a, nope)\nf = DFF(g)\n"},
		{"duplicate", "INPUT(a)\nINPUT(a)\n"},
		{"comb cycle", "a = AND(b, b)\nb = AND(a, a)\nf = DFF(a)\n"},
		{"not arity", "INPUT(a)\ng = NOT(a, a)\nf = DFF(g)\n"},
		{"malformed rhs", "g = AND a, b\n"},
	}
	for _, c := range cases {
		if _, err := ParseBench(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestParseBenchConstants(t *testing.T) {
	src := "c0 = CONST0()\nc1 = CONST1()\ng = OR(c0, c1)\nf = DFF(g)\n"
	n, err := ParseBench(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator(n)
	sim.Step()
	if !sim.FFValue(0) {
		t.Fatal("OR(0,1) must be 1")
	}
}

func TestParseBenchForwardReferences(t *testing.T) {
	// g references h which is declared later.
	src := "INPUT(a)\ng = AND(a, h)\nh = NOT(a)\nf = DFF(g)\n"
	n, err := ParseBench(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	// f' = a AND NOT a == 0 always.
	sim := NewSimulator(n)
	for _, v := range []bool{false, true} {
		sim.SetInput(0, v)
		sim.Step()
		if sim.FFValue(0) {
			t.Fatal("contradiction gate must be 0")
		}
	}
}

func TestWriteBenchUnwiredFF(t *testing.T) {
	n := New()
	m := n.AddModule("m")
	n.AddFF("f", m)
	var sb strings.Builder
	if err := WriteBench(&sb, n); err == nil {
		t.Fatal("expected error for unwired FF")
	}
}

func TestParseBenchOutputIgnored(t *testing.T) {
	src := "INPUT(a)\nOUTPUT(f)\nf = DFF(a)\n"
	if _, err := ParseBench(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
}
