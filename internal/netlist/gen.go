package netlist

import (
	"fmt"
	"math/rand"
)

// GenConfig parameterizes random circuit generation. The benchmarks of
// the paper are "only available without the underlying circuit", so the
// authors randomly generated 10 circuits per benchmark; Generate
// reproduces that protocol deterministically from a seed.
type GenConfig struct {
	// ModuleNames names the circuit modules (instruments). One module
	// is created per name.
	ModuleNames []string
	// PortFFs gives, per module, how many circuit flip-flops are
	// RSN-facing (capture sources / update sinks of scan flip-flops).
	PortFFs []int
	// InternalFFs is the number of internal (non-RSN-connected)
	// flip-flops per module. The dependency analysis bridges over them.
	InternalFFs int
	// InternalPerModule optionally overrides InternalFFs with an
	// explicit per-module count (parallel to ModuleNames).
	InternalPerModule []int
	// Inputs is the number of primary inputs.
	Inputs int
	// CrossEdges is the number of directed inter-module data paths.
	// Each one threads a source module's flip-flop through internal
	// flip-flops into a destination module — the raw material of
	// hybrid scan paths.
	CrossEdges int
	// ReconvergenceRate is the probability that a flip-flop's
	// next-state logic masks one of its structural supports through an
	// XOR reconvergence, producing an only-structural dependency
	// (cf. F6 and the XOR gate in the paper's Figure 5).
	ReconvergenceRate float64
	// Depth is the depth of the random gate trees feeding flip-flops.
	Depth int
	// CrossSources optionally restricts which modules may drive
	// inter-module paths (true = may source cross edges). Modules
	// holding sensitive data typically do not broadcast it into other
	// modules; their data leaves only over the scan infrastructure.
	// nil allows every module.
	CrossSources []bool
}

// Generated bundles a generated netlist with the bookkeeping the RSN
// attachment needs.
type Generated struct {
	N *Netlist
	// PortFFs lists, per module, the RSN-facing circuit flip-flops.
	PortFFs [][]FFID
	// InternalFFs lists the flip-flops not connected to the RSN.
	InternalFFs []FFID
	// CrossPaths records the generated inter-module paths as
	// (source FF, destination FF, functional) triples; functional is
	// false when the path was masked by a reconvergence.
	CrossPaths []CrossPath
}

// CrossPath describes one generated inter-module data path.
type CrossPath struct {
	Src, Dst   FFID
	Functional bool
}

// DefaultGenConfig returns a config sized for the given module count
// with sensible defaults matching the running-example flavor.
func DefaultGenConfig(moduleNames []string, portFFsPerModule int) GenConfig {
	ports := make([]int, len(moduleNames))
	for i := range ports {
		ports[i] = portFFsPerModule
	}
	return GenConfig{
		ModuleNames:       moduleNames,
		PortFFs:           ports,
		InternalFFs:       2,
		Inputs:            4,
		CrossEdges:        len(moduleNames),
		ReconvergenceRate: 0.3,
		Depth:             2,
	}
}

// Generate builds a random reconvergent sequential circuit.
func Generate(cfg GenConfig, seed int64) *Generated {
	if len(cfg.ModuleNames) == 0 {
		panic("netlist: Generate requires at least one module")
	}
	if len(cfg.PortFFs) != len(cfg.ModuleNames) {
		panic("netlist: PortFFs must parallel ModuleNames")
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 2
	}
	rng := rand.New(rand.NewSource(seed))
	n := New()
	g := &Generated{N: n}

	inputs := make([]NodeID, cfg.Inputs)
	for i := range inputs {
		inputs[i] = n.AddInput(fmt.Sprintf("pi%d", i))
	}
	if len(inputs) == 0 {
		inputs = append(inputs, n.AddInput("pi0"))
	}

	// Create all flip-flops first so wiring can reference any of them.
	moduleFFs := make([][]FFID, len(cfg.ModuleNames))
	internalsByModule := make([][]FFID, len(cfg.ModuleNames))
	var internals []FFID
	for m, name := range cfg.ModuleNames {
		mi := n.AddModule(name)
		ports := make([]FFID, cfg.PortFFs[m])
		for i := range ports {
			ports[i] = n.AddFF(fmt.Sprintf("%s.F%d", name, i), mi)
		}
		g.PortFFs = append(g.PortFFs, ports)
		moduleFFs[m] = append([]FFID{}, ports...)
		nInternal := cfg.InternalFFs
		if m < len(cfg.InternalPerModule) {
			nInternal = cfg.InternalPerModule[m]
		}
		for i := 0; i < nInternal; i++ {
			ff := n.AddFF(fmt.Sprintf("%s.IF%d", name, i), mi)
			internals = append(internals, ff)
			internalsByModule[m] = append(internalsByModule[m], ff)
			moduleFFs[m] = append(moduleFFs[m], ff)
		}
	}
	g.InternalFFs = internals

	// randomSource picks a driver node for gate trees of module m:
	// mostly intra-module flip-flops, sometimes a primary input.
	randomSource := func(m int) NodeID {
		if rng.Float64() < 0.25 {
			return inputs[rng.Intn(len(inputs))]
		}
		ffs := moduleFFs[m]
		if len(ffs) == 0 {
			return inputs[rng.Intn(len(inputs))]
		}
		return n.FFs[ffs[rng.Intn(len(ffs))]].Node
	}

	var tree func(m, depth int) NodeID
	tree = func(m, depth int) NodeID {
		if depth == 0 {
			return randomSource(m)
		}
		var a, b NodeID
		if depth == 1 {
			a, b = randomSource(m), randomSource(m)
		} else {
			a, b = tree(m, depth-1), tree(m, depth-1)
		}
		switch rng.Intn(4) {
		case 0:
			return n.AddGate(And, a, b)
		case 1:
			return n.AddGate(Or, a, b)
		case 2:
			return n.AddGate(Xor, a, b)
		default:
			return n.AddGate(Mux, randomSource(m), a, b)
		}
	}

	// maskThrough returns a node that structurally depends on s but
	// functionally does not: XOR(s, XOR(s, carrier)) == carrier.
	maskThrough := func(s, carrier NodeID) NodeID {
		inner := n.AddGate(Xor, s, carrier)
		return n.AddGate(Xor, s, inner)
	}

	// Wire every flip-flop's next state.
	for m := range cfg.ModuleNames {
		for _, ff := range moduleFFs[m] {
			d := tree(m, cfg.Depth)
			if rng.Float64() < cfg.ReconvergenceRate {
				// Mask a random same-module signal: the FF becomes
				// structurally but not functionally dependent on it.
				s := randomSource(m)
				d = maskThrough(s, d)
			}
			n.SetFFInput(ff, d)
		}
	}

	// Inter-module paths: src port FF -> (internal FF ->)* dst port FF.
	var srcModules []int
	for m := range cfg.ModuleNames {
		if cfg.CrossSources == nil || (m < len(cfg.CrossSources) && cfg.CrossSources[m]) {
			srcModules = append(srcModules, m)
		}
	}
	for e := 0; e < cfg.CrossEdges && len(srcModules) > 0; e++ {
		srcM := srcModules[rng.Intn(len(srcModules))]
		dstM := rng.Intn(len(cfg.ModuleNames))
		if len(g.PortFFs[srcM]) == 0 || len(g.PortFFs[dstM]) == 0 {
			continue
		}
		src := g.PortFFs[srcM][rng.Intn(len(g.PortFFs[srcM]))]
		dst := g.PortFFs[dstM][rng.Intn(len(g.PortFFs[dstM]))]
		if src == dst {
			continue
		}
		functional := rng.Float64() >= cfg.ReconvergenceRate

		// Route through 0-2 internal flip-flops of the source module.
		// Hopping through other modules' internals would drag their
		// data (potentially confidential) onto this path.
		srcInternals := internalsByModule[srcM]
		carrier := n.FFs[src].Node
		hops := rng.Intn(3)
		for h := 0; h < hops && len(srcInternals) > 0; h++ {
			iff := srcInternals[rng.Intn(len(srcInternals))]
			if iff == dst || iff == src {
				continue
			}
			// Merge the carrier into the internal FF's next state so
			// the existing behaviour is extended, not replaced.
			old := n.FFs[iff].D
			n.SetFFInput(iff, n.AddGate(Or, old, carrier))
			carrier = n.FFs[iff].Node
		}
		old := n.FFs[dst].D
		var d NodeID
		if functional {
			// OR keeps a functional (1-controllable) path from carrier.
			d = n.AddGate(Or, old, carrier)
		} else {
			d = maskThrough(carrier, old)
		}
		n.SetFFInput(dst, d)
		g.CrossPaths = append(g.CrossPaths, CrossPath{Src: src, Dst: dst, Functional: functional})
	}

	if err := n.Validate(); err != nil {
		panic("netlist: generated circuit invalid: " + err.Error())
	}
	return g
}
