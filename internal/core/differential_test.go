package core

import (
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/dep"
	"repro/internal/netlist"
	"repro/internal/paperex"
	"repro/internal/rsn"
	"repro/internal/secspec"
)

// TestDifferentialNoLeakAfterSecure is the strongest dynamic check in
// the suite: it fuzzes random networks, circuits and specifications,
// secures them, and then verifies the security property by
// differential simulation — two runs that differ ONLY in the initial
// state of a confidential module's flip-flops are driven through random
// capture/shift/update/clock sequences under attacker-chosen
// configurations; if any flip-flop of a module that must not see that
// data ever differs between the runs, confidential information flowed
// there.
//
// Soundness: information flow requires flipping some flip-flop within
// one cycle at each step, i.e. a chain of 1-cycle functional
// dependencies composed with scan operations — exactly the flows the
// method removes. So a secured network must show zero differences.
func TestDifferentialNoLeakAfterSecure(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	secured := 0
	checked := 0
	for iter := 0; iter < 25; iter++ {
		nw := bench.RandomNetwork(rng, 4+rng.Intn(6))
		att := bench.AttachCircuit(nw, bench.DefaultCircuitConfig(), rng.Int63())
		spec := secspec.GenerateWithRoles(len(nw.Modules), att.DataSources, secspec.DefaultGenConfig(), rng.Int63())

		rep, err := Secure(nw, att.Circuit, att.Internal, spec, Options{Mode: dep.Exact})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if rep.InsecureLogic {
			continue // the circuit itself leaks; out of the method's scope
		}
		if !rep.Secured {
			t.Fatalf("iter %d: not secured and not insecure logic", iter)
		}
		secured++

		// Pick a confidential source module and the set of modules its
		// data must not reach.
		conf := -1
		for m := range spec.Trust {
			if len(att.DataSources) > m && att.DataSources[m] && spec.Accepts[m] != secspec.AllCats(spec.NumCategories) {
				conf = m
				break
			}
		}
		if conf < 0 {
			continue
		}
		var victims []int
		for m := range spec.Trust {
			if spec.Violates(conf, m) {
				victims = append(victims, m)
			}
		}
		if len(victims) == 0 {
			continue
		}
		checked++
		if leak := differentialLeak(rng, nw, att.Circuit, conf, victims, 40); leak {
			t.Fatalf("iter %d: secured network leaked module %d data", iter, conf)
		}
	}
	if secured < 5 {
		t.Fatalf("only %d networks secured; fuzz setup too tame", secured)
	}
	if checked < 3 {
		t.Fatalf("only %d differential checks executed; fuzz setup too tame", checked)
	}
}

// differentialLeak drives two coupled simulations through `rounds`
// random scan operations and reports whether any victim-module
// flip-flop (circuit or scan) ever differed.
func differentialLeak(rng *rand.Rand, nw *rsn.Network, circuit *netlist.Netlist, conf int, victims []int, rounds int) bool {
	isVictim := make(map[int]bool, len(victims))
	for _, v := range victims {
		isVictim[v] = true
	}

	csimA := netlist.NewSimulator(circuit)
	csimB := netlist.NewSimulator(circuit)
	// Identical random initial state...
	for f := 0; f < circuit.NumFFs(); f++ {
		v := rng.Intn(2) == 1
		csimA.SetFF(netlist.FFID(f), v)
		csimB.SetFF(netlist.FFID(f), v)
	}
	// ...except the confidential module's flip-flops.
	for f := 0; f < circuit.NumFFs(); f++ {
		if circuit.FFs[f].Module == conf {
			csimA.SetFF(netlist.FFID(f), false)
			csimB.SetFF(netlist.FFID(f), true)
		}
	}
	simA := rsn.NewSimulator(nw, csimA)
	simB := rsn.NewSimulator(nw, csimB)

	randomConfig := func() rsn.Config {
		cfg := nw.NewConfig()
		for m := range nw.Muxes {
			cfg[m] = rng.Intn(len(nw.Muxes[m].Inputs))
		}
		return cfg
	}
	differs := func() bool {
		for f := 0; f < circuit.NumFFs(); f++ {
			if isVictim[circuit.FFs[f].Module] &&
				csimA.FFValue(netlist.FFID(f)) != csimB.FFValue(netlist.FFID(f)) {
				return true
			}
		}
		for r := range nw.Registers {
			if !isVictim[nw.Registers[r].Module] {
				continue
			}
			for b := 0; b < nw.Registers[r].Len; b++ {
				if simA.ScanFF(r, b) != simB.ScanFF(r, b) {
					return true
				}
			}
		}
		return false
	}

	for round := 0; round < rounds; round++ {
		cfg := randomConfig()
		switch rng.Intn(4) {
		case 0:
			if simA.Capture(cfg) != nil || simB.Capture(cfg) != nil {
				continue
			}
		case 1:
			n := 1 + rng.Intn(6)
			for k := 0; k < n; k++ {
				bit := rng.Intn(2) == 1
				if _, err := simA.Shift(cfg, bit); err != nil {
					break
				}
				if _, err := simB.Shift(cfg, bit); err != nil {
					break
				}
			}
		case 2:
			if simA.Update(cfg) != nil || simB.Update(cfg) != nil {
				continue
			}
		default:
			n := 1 + rng.Intn(3)
			simA.ClockCircuit(n)
			simB.ClockCircuit(n)
		}
		if differs() {
			return true
		}
	}
	return false
}

// TestDifferentialDetectsInsecureNetworks sanity-checks the leak
// detector itself: on the paper's insecure running example the
// differential simulation must be able to observe the leak.
func TestDifferentialDetectsInsecureNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	found := false
	for attempt := 0; attempt < 30 && !found; attempt++ {
		e := newRunningExample()
		victims := []int{e.untrusted}
		if differentialLeak(rng, e.nw, e.circuit, e.crypto, victims, 60) {
			found = true
		}
	}
	if !found {
		t.Fatal("differential detector never observed the known leak")
	}
}

type runningHandles struct {
	nw        *rsn.Network
	circuit   *netlist.Netlist
	crypto    int
	untrusted int
}

func newRunningExample() runningHandles {
	e := paperex.New()
	return runningHandles{nw: e.Network, circuit: e.Circuit, crypto: e.Crypto, untrusted: e.Untrusted}
}
