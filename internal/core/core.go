// Package core orchestrates the complete secure-data-flow method of
// the paper (Figure 2): the RSN is annotated with the user-given
// security specification and pure-scan-path violations are detected and
// resolved (the IOLTS 2018 method); the data-flow analysis computes
// multi-cycle dependencies over the circuit logic with presetting and
// bridging; insecure circuit logic is detected; and finally security
// violations over hybrid scan paths are detected and resolved. The
// result is a (data-flow) secure RSN that still contains every scan
// register of the original network.
package core

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"repro/internal/dep"
	"repro/internal/engine"
	"repro/internal/hybrid"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/pure"
	"repro/internal/rsn"
	"repro/internal/secspec"
)

// Options configures a Secure run.
type Options struct {
	// Mode selects exact (SAT-classified) dependencies or the
	// structural over-approximation of Section IV-C.
	Mode dep.Mode
	// Log, when non-nil, receives one line per pipeline stage.
	Log func(format string, args ...any)
	// Workers bounds the SAT worker pool of the dependency analysis;
	// <= 0 uses all CPUs.
	Workers int
	// Context cancels the run between SAT queries and pipeline stages;
	// nil means no cancellation.
	Context context.Context
	// Progress, when non-nil, receives fine-grained engine progress
	// lines (per-stage fan-out and query counts); Log keeps the coarse
	// pipeline summary.
	Progress func(format string, args ...any)
	// Logger, when non-nil, receives engine progress as structured
	// debug records (see engine.Options.Logger).
	Logger *slog.Logger
	// Stats, when non-nil, accumulates race-safe per-stage engine
	// instrumentation (wall times and query counts).
	Stats *engine.Stats
	// Tracer, when non-nil, receives hierarchical spans of the run; the
	// whole pipeline nests under one "secure" span (itself a child of
	// TraceParent when given).
	Tracer *obs.Tracer
	// TraceParent is the enclosing span for this run's spans.
	TraceParent *obs.Span
}

// engineOptions derives the engine configuration of one run.
func (o Options) engineOptions() engine.Options {
	return engine.Options{Workers: o.Workers, Context: o.Context, Progress: o.Progress,
		Logger: o.Logger, Stats: o.Stats, Tracer: o.Tracer, TraceParent: o.TraceParent}
}

// EngineOptions derives the engine configuration of one run — exposed
// so session holders (internal/exp, internal/serve) can build a
// hybrid.Analysis under exactly the configuration a Secure call with
// these options would use.
func (o Options) EngineOptions() engine.Options { return o.engineOptions() }

// StageTimes records wall-clock runtimes per pipeline stage, matching
// the runtime columns of Table I.
type StageTimes struct {
	DependencyCalc time.Duration
	PureStage      time.Duration
	HybridStage    time.Duration
	InsecureCheck  time.Duration
	Total          time.Duration
}

// Report is the outcome of one Secure run.
type Report struct {
	// Secured is true when the returned network is data-flow secure.
	Secured bool
	// InsecureLogic is true when the circuit logic itself violates the
	// specification — no RSN transformation can help (Section III-B).
	InsecureLogic bool
	// InsecureModulePairs lists the offending module pairs when
	// InsecureLogic is set.
	InsecureModulePairs [][2]int
	// ViolatingRegsBefore counts the scan registers with at least one
	// violating flip-flop before the method ran (Table I column 5).
	ViolatingRegsBefore int
	// PureChanges and HybridChanges are the applied change counts
	// (Table I columns 6-8).
	PureChanges, HybridChanges int
	// PureChangeList and HybridChangeList detail every change.
	PureChangeList   []pure.Change
	HybridChangeList []hybrid.Change
	// DepStats carries the dependency computation bookkeeping.
	DepStats dep.Stats
	// PresetDeps counts preset consecutive-flip-flop dependencies.
	PresetDeps int
	// Times records per-stage runtimes.
	Times StageTimes
}

// TotalChanges returns the total number of applied changes.
func (r *Report) TotalChanges() int { return r.PureChanges + r.HybridChanges }

// Secure runs the full pipeline on the network, mutating it into a
// secure RSN. The circuit's internal flip-flops (not connected to the
// scan infrastructure) are bridged during the data-flow analysis.
//
// If the circuit logic itself is insecure the report's InsecureLogic
// flag is set, the network is left unchanged, and no error is returned:
// the condition is a property of the circuit, not a failure of the
// method (such runs are excluded from the paper's averaged results).
func Secure(nw *rsn.Network, circuit *netlist.Netlist, internal []netlist.FFID, spec *secspec.Spec, opts Options) (*Report, error) {
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := nw.Validate(); err != nil {
		return nil, fmt.Errorf("core: input network invalid: %w", err)
	}
	rep := &Report{}
	start := time.Now()

	// Data-flow analysis (Section III-A): 1-cycle dependencies,
	// presetting, bridging, multi-cycle closure. Computed once, without
	// the reconfigurable RSN connections, and reused across all
	// structural changes.
	eng := opts.engineOptions()
	st := nw.Stats()
	span := eng.StartSpan("secure",
		obs.Str("network", nw.Name), obs.Int("registers", int64(st.Registers)),
		obs.Int("scan_ffs", int64(st.ScanFFs)), obs.Int("muxes", int64(st.Muxes)))
	defer span.End()
	defer func() {
		span.SetAttrs(obs.Bool("secured", rep.Secured), obs.Bool("insecure_logic", rep.InsecureLogic),
			obs.Int("pure_changes", int64(rep.PureChanges)), obs.Int("hybrid_changes", int64(rep.HybridChanges)))
	}()
	// Stage spans of this run nest under the pipeline span.
	eng = eng.WithParent(span)
	t0 := time.Now()
	an, err := hybrid.NewAnalysisOpts(nw, circuit, internal, spec, opts.Mode, eng)
	if err != nil {
		return rep, fmt.Errorf("core: dependency analysis: %w", err)
	}
	rep.Times.DependencyCalc = time.Since(t0)
	logf("dependency calculation: %d denoted FFs, %d dependencies (%d preset), %d SAT calls",
		an.DepStats.FFsDenoted, an.DepStats.DepsMultiCycle, an.PresetDeps, an.DepStats.SATCalls)
	return rep, securePipeline(an, nw, eng, rep, logf, start)
}

// SecureWithAnalysis runs the pipeline stages after the dependency
// calculation against an existing Analysis — the incremental-session
// entry point: the caller amortizes the expensive fixed-infrastructure
// analysis (and its cached attribute fixed point) across a chain of
// derived networks, each run re-propagating only its dirty cone. nw
// must share the analysis's register set (its wiring may differ
// arbitrarily). The analysis runs under the engine configuration
// derived from opts for this call (workers, stats, tracing,
// cancellation) while keeping its incremental cache, and the report's
// DependencyCalc time is zero — that cost was paid when the analysis
// was built.
func SecureWithAnalysis(an *hybrid.Analysis, nw *rsn.Network, opts Options) (*Report, error) {
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := nw.Validate(); err != nil {
		return nil, fmt.Errorf("core: input network invalid: %w", err)
	}
	rep := &Report{}
	start := time.Now()
	eng := opts.engineOptions()
	st := nw.Stats()
	span := eng.StartSpan("secure",
		obs.Str("network", nw.Name), obs.Int("registers", int64(st.Registers)),
		obs.Int("scan_ffs", int64(st.ScanFFs)), obs.Int("muxes", int64(st.Muxes)))
	defer span.End()
	defer func() {
		span.SetAttrs(obs.Bool("secured", rep.Secured), obs.Bool("insecure_logic", rep.InsecureLogic),
			obs.Int("pure_changes", int64(rep.PureChanges)), obs.Int("hybrid_changes", int64(rep.HybridChanges)))
	}()
	return rep, securePipeline(an.WithEngine(eng.WithParent(span)), nw, eng.WithParent(span), rep, logf, start)
}

// securePipeline runs every stage after the dependency calculation:
// violating-register census, insecure-logic check, pure resolution,
// hybrid resolution, and the final no-violations verification. It
// mutates nw toward a secure network and fills rep in place.
func securePipeline(an *hybrid.Analysis, nw *rsn.Network, eng engine.Options, rep *Report, logf func(string, ...any), start time.Time) error {
	spec := an.Spec
	rep.DepStats = an.DepStats
	rep.PresetDeps = an.PresetDeps

	// Violating registers of the original network (pure and hybrid).
	rep.ViolatingRegsBefore = len(an.ViolatingRegisters(nw))
	logf("registers with security violations: %d", rep.ViolatingRegsBefore)

	// Insecure circuit logic (Section III-B): violations that exist
	// over the fixed infrastructure alone.
	t0 := time.Now()
	pairs := an.InsecureModulePairs()
	rep.Times.InsecureCheck = time.Since(t0)
	if len(pairs) > 0 {
		rep.InsecureLogic = true
		rep.InsecureModulePairs = pairs
		rep.Times.Total = time.Since(start)
		logf("insecure circuit logic: %d module pairs — circuit redesign required", len(pairs))
		return nil
	}

	// Pure scan paths (Section III-C first half, the IOLTS 2018 stage).
	t0 = time.Now()
	pureDone := eng.Stage("pure-resolve").Start()
	pureSpan := eng.StartSpan("pure-resolve")
	pres, err := pure.Resolve(nw, spec)
	if pres != nil {
		pureSpan.SetAttrs(obs.Int("violations_before", int64(pres.ViolatingBefore)),
			obs.Int("changes", int64(len(pres.Changes))))
	}
	pureSpan.End()
	pureDone()
	rep.Times.PureStage = time.Since(t0)
	if err != nil {
		return fmt.Errorf("core: pure stage: %w", err)
	}
	rep.PureChanges = len(pres.Changes)
	rep.PureChangeList = pres.Changes
	logf("pure scan paths: %d violations resolved with %d changes", pres.ViolatingBefore, len(pres.Changes))

	// Hybrid scan paths (Sections III-C/III-D, the novel stage).
	t0 = time.Now()
	hres, err := hybrid.Resolve(an, nw)
	rep.Times.HybridStage = time.Since(t0)
	if err != nil {
		return fmt.Errorf("core: hybrid stage: %w", err)
	}
	rep.HybridChanges = len(hres.Changes)
	rep.HybridChangeList = hres.Changes
	logf("hybrid scan paths: %d violating nodes resolved with %d changes", hres.ViolationsBefore, len(hres.Changes))

	if err := nw.Validate(); err != nil {
		return fmt.Errorf("core: network invalid after transformation: %w", err)
	}
	if v := an.Violations(nw); len(v) != 0 {
		return fmt.Errorf("core: %d violations remain after the method", len(v))
	}
	rep.Secured = true
	rep.Times.Total = time.Since(start)
	logf("network is data-flow secure (%d total changes)", rep.TotalChanges())
	return nil
}
