package core

import (
	"strings"
	"testing"

	"repro/internal/dep"
	"repro/internal/netlist"
	"repro/internal/paperex"
	"repro/internal/rsn"
)

func TestSecureRunningExample(t *testing.T) {
	e := paperex.New()
	var lines []string
	rep, err := Secure(e.Network, e.Circuit, e.Internal, e.Spec, Options{
		Mode: dep.Exact,
		Log:  func(f string, a ...any) { lines = append(lines, f) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Secured || rep.InsecureLogic {
		t.Fatalf("report: %+v", rep)
	}
	if rep.ViolatingRegsBefore == 0 {
		t.Fatal("the insecure example must report violating registers")
	}
	if rep.PureChanges == 0 || rep.HybridChanges == 0 {
		t.Fatalf("changes: pure=%d hybrid=%d; both stages must act", rep.PureChanges, rep.HybridChanges)
	}
	if rep.TotalChanges() != rep.PureChanges+rep.HybridChanges {
		t.Fatal("TotalChanges inconsistent")
	}
	if rep.DepStats.SATCalls == 0 || rep.PresetDeps == 0 {
		t.Fatal("dependency stats not populated")
	}
	if rep.Times.Total <= 0 {
		t.Fatal("times not populated")
	}
	if len(lines) == 0 {
		t.Fatal("log callback never invoked")
	}
	if len(e.Network.Registers) != 5 {
		t.Fatal("registers lost")
	}
}

func TestSecureDetectsInsecureLogic(t *testing.T) {
	e := paperex.New()
	// Untrusted module reads crypto state directly in the circuit.
	e.Circuit.SetFFInput(e.F[6], e.Circuit.FFs[e.F[1]].Node)
	before := e.Network.Clone()
	rep, err := Secure(e.Network, e.Circuit, e.Internal, e.Spec, Options{Mode: dep.Exact})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.InsecureLogic || rep.Secured {
		t.Fatalf("report: %+v", rep)
	}
	if len(rep.InsecureModulePairs) == 0 {
		t.Fatal("module pairs missing")
	}
	// The network must be untouched.
	for i := range before.Registers {
		if before.Registers[i].In != e.Network.Registers[i].In {
			t.Fatal("network modified despite insecure logic")
		}
	}
}

func TestSecureAlreadySecureNetwork(t *testing.T) {
	e := paperex.New()
	// Loosen the spec completely.
	for m := range e.Spec.Trust {
		e.Spec.SetAccepts(m, 0xF)
	}
	rep, err := Secure(e.Network, e.Circuit, e.Internal, e.Spec, Options{Mode: dep.Exact})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Secured || rep.TotalChanges() != 0 || rep.ViolatingRegsBefore != 0 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestSecureStructuralApproxNeedsMoreChanges(t *testing.T) {
	eE := paperex.New()
	repE, err := Secure(eE.Network, eE.Circuit, eE.Internal, eE.Spec, Options{Mode: dep.Exact})
	if err != nil {
		t.Fatal(err)
	}
	eA := paperex.New()
	repA, err := Secure(eA.Network, eA.Circuit, eA.Internal, eA.Spec, Options{Mode: dep.StructuralApprox})
	if err != nil {
		t.Fatal(err)
	}
	if repA.TotalChanges() < repE.TotalChanges() {
		t.Fatalf("approx changes %d < exact changes %d", repA.TotalChanges(), repE.TotalChanges())
	}
}

func TestSecureRejectsInvalidNetwork(t *testing.T) {
	e := paperex.New()
	e.Network.Registers[0].In = rsn.NoRef
	_, err := Secure(e.Network, e.Circuit, e.Internal, e.Spec, Options{Mode: dep.Exact})
	if err == nil || !strings.Contains(err.Error(), "invalid") {
		t.Fatalf("err = %v", err)
	}
}

// attack attempts the paper's attack scenario (Section II-D): capture
// the confidential bit F2 into the scan chain, shift it around under
// the given configuration, update it into the circuit and clock the
// functional logic. It reports whether the confidential bit reached the
// untrusted module's flip-flops.
func attack(e *paperex.Example, cfg rsn.Config, shifts int) bool {
	csim := netlist.NewSimulator(e.Circuit)
	csim.SetFF(e.F[1], true) // confidential datum in crypto's F2
	sim := rsn.NewSimulator(e.Network, csim)
	if err := sim.Capture(cfg); err != nil {
		return false
	}
	if _, err := sim.ShiftN(cfg, nil, shifts); err != nil {
		return false
	}
	if err := sim.Update(cfg); err != nil {
		return false
	}
	sim.ClockCircuit(4)
	// Did the bit land in any untrusted flip-flop?
	for _, f := range []netlist.FFID{e.F[6], e.F[7], e.F[8], e.F[9]} {
		if csim.FFValue(f) {
			return true
		}
	}
	// Or in the untrusted scan register after a final capture?
	if err := sim.Capture(cfg); err != nil {
		return false
	}
	for b := 0; b < e.Network.Registers[e.SR[3]].Len; b++ {
		if sim.ScanFF(e.SR[3], b) {
			return true
		}
	}
	return false
}

// allConfigs enumerates every mux configuration of the network.
func allConfigs(nw *rsn.Network) []rsn.Config {
	cfgs := []rsn.Config{nw.NewConfig()}
	for m := range nw.Muxes {
		var next []rsn.Config
		for _, c := range cfgs {
			for sel := 0; sel < len(nw.Muxes[m].Inputs); sel++ {
				cc := append(rsn.Config{}, c...)
				cc[m] = sel
				next = append(next, cc)
			}
		}
		cfgs = next
	}
	return cfgs
}

// TestAttackSimulation demonstrates the paper's threat end to end: the
// hybrid attack succeeds on the original network and no configuration
// or shift count leaks the confidential bit after the method secured
// the network.
func TestAttackSimulation(t *testing.T) {
	// Before: the hybrid attack works with M1 selecting SR1 so the
	// confidential bit shifts from SF2 into SF5, is updated into F5 and
	// travels through IF1/IF2 into the untrusted F7.
	e := paperex.New()
	cfg := e.Network.NewConfig()
	cfg[e.M1] = 0 // SR3 fed from SR1
	cfg[e.M2] = 0 // path continues over SR3
	if !attack(e, cfg, 1) {
		t.Fatal("hybrid attack must succeed on the insecure network")
	}

	// After: secure the network, then try every configuration and a
	// range of shift counts.
	e2 := paperex.New()
	rep, err := Secure(e2.Network, e2.Circuit, e2.Internal, e2.Spec, Options{Mode: dep.Exact})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Secured {
		t.Fatal("not secured")
	}
	for _, cfg := range allConfigs(e2.Network) {
		for shifts := 0; shifts <= 14; shifts++ {
			if attack(e2, cfg, shifts) {
				t.Fatalf("attack succeeded on secured network (cfg=%v shifts=%d)", cfg, shifts)
			}
		}
	}
}

func BenchmarkSecureRunningExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := paperex.New()
		if _, err := Secure(e.Network, e.Circuit, e.Internal, e.Spec, Options{Mode: dep.Exact}); err != nil {
			b.Fatal(err)
		}
	}
}
