package dep

import (
	"repro/internal/cnf"
	"repro/internal/netlist"
	"repro/internal/sat"
)

// Witness is a satisfying assignment demonstrating that a node's value
// functionally depends on a leaf: under the given values of the other
// cone leaves, flipping the leaf flips the node.
type Witness struct {
	Root, Leaf netlist.NodeID
	// Leaves assigns every other (non-constant) leaf of the cone.
	Leaves map[netlist.NodeID]bool
}

// FunctionalWitness is FunctionalDepends with evidence: if root
// functionally depends on leaf it returns a concrete witness
// assignment, checkable by simulation.
func FunctionalWitness(n *netlist.Netlist, root, leaf netlist.NodeID) (*Witness, bool) {
	gates, leaves := n.Cone(root)

	b := cnf.NewBuilder()
	shared := make(map[netlist.NodeID]sat.Lit, len(leaves))
	inCone := false
	for _, l := range leaves {
		if l == leaf {
			inCone = true
			continue
		}
		switch n.Nodes[l].Kind {
		case netlist.KindConst0:
			shared[l] = b.Const(false)
		case netlist.KindConst1:
			shared[l] = b.Const(true)
		default:
			shared[l] = b.NewVar()
		}
	}
	if !inCone {
		return nil, false
	}

	encodeCopy := func(leafVal bool) sat.Lit {
		local := make(map[netlist.NodeID]sat.Lit, len(gates)+1)
		pinned := b.Const(leafVal)
		lookup := func(id netlist.NodeID) sat.Lit {
			if id == leaf {
				return pinned
			}
			if l, ok := local[id]; ok {
				return l
			}
			return shared[id]
		}
		for _, g := range gates {
			nd := &n.Nodes[g]
			out := b.NewVar()
			in := make([]sat.Lit, len(nd.Fanin))
			for i, f := range nd.Fanin {
				in[i] = lookup(f)
			}
			switch nd.Gate {
			case netlist.And:
				b.And(out, in...)
			case netlist.Or:
				b.Or(out, in...)
			case netlist.Nand:
				b.Nand(out, in...)
			case netlist.Nor:
				b.Nor(out, in...)
			case netlist.Xor:
				b.Xor(out, in...)
			case netlist.Xnor:
				b.Xnor(out, in...)
			case netlist.Not:
				b.Not(out, in[0])
			case netlist.Buf:
				b.Buf(out, in[0])
			case netlist.Mux:
				b.Mux(out, in[0], in[1], in[2])
			case netlist.Maj:
				b.Majority3(out, in[0], in[1], in[2])
			}
			local[g] = out
		}
		return lookup(root)
	}

	o0 := encodeCopy(false)
	o1 := encodeCopy(true)
	if b.S.Solve(b.Different(o0, o1)) != sat.Sat {
		return nil, false
	}
	w := &Witness{Root: root, Leaf: leaf, Leaves: make(map[netlist.NodeID]bool, len(shared))}
	for id, lit := range shared {
		if k := n.Nodes[id].Kind; k == netlist.KindConst0 || k == netlist.KindConst1 {
			continue
		}
		v := b.S.Value(lit.Var())
		if lit.Neg() {
			v = !v
		}
		w.Leaves[id] = v
	}
	return w, true
}

// CheckWitness verifies a witness by evaluating the cone under both
// leaf values; it reports whether the root really flips.
func CheckWitness(n *netlist.Netlist, w *Witness) bool {
	eval := func(leafVal bool) bool {
		var rec func(id netlist.NodeID) bool
		memo := map[netlist.NodeID]bool{}
		rec = func(id netlist.NodeID) bool {
			if id == w.Leaf {
				return leafVal
			}
			if v, ok := memo[id]; ok {
				return v
			}
			nd := &n.Nodes[id]
			var v bool
			switch nd.Kind {
			case netlist.KindConst0:
				v = false
			case netlist.KindConst1:
				v = true
			case netlist.KindGate:
				in := make([]bool, len(nd.Fanin))
				for i, f := range nd.Fanin {
					in[i] = rec(f)
				}
				v = netlist.EvalGate(nd.Gate, in)
			default:
				v = w.Leaves[id]
			}
			memo[id] = v
			return v
		}
		return rec(w.Root)
	}
	return eval(false) != eval(true)
}
