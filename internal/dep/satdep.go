package dep

import (
	"repro/internal/cnf"
	"repro/internal/netlist"
	"repro/internal/sat"
)

// ConeQuerier answers functional-dependence queries for the leaves of
// one root's fan-in cone against a single shared encoding. The cone is
// extracted and Tseitin-encoded exactly once — two copies of the cone
// with per-leaf equality selectors — and each per-leaf cofactor query
// is an incremental solve under assumptions: the queried leaf is pinned
// to 0 in one copy and 1 in the other while every other leaf's
// selector forces the copies equal. Learned clauses accumulate across
// the queries of one root, so classifying all leaves of a root is far
// cheaper than re-encoding the miter per (root, leaf) pair.
//
// A ConeQuerier is not safe for concurrent use; the 1-cycle worker
// pool creates one per root inside each worker.
type ConeQuerier struct {
	n    *netlist.Netlist
	root netlist.NodeID

	b      *cnf.Builder
	leaves []netlist.NodeID
	// Per non-constant leaf: the two copy literals and the equality
	// selector (sel -> copyA == copyB).
	copyA, copyB, sel map[netlist.NodeID]sat.Lit
	// diff is the miter output: true iff the two copies differ.
	diff sat.Lit
	// assume is the reusable assumption scratch buffer.
	assume []sat.Lit
	// prevStats is the solver-counter snapshot taken after the previous
	// Depends call, the baseline for QueryStats deltas.
	prevStats sat.Statistics
}

// NewConeQuerier extracts and encodes root's fan-in cone.
func NewConeQuerier(n *netlist.Netlist, root netlist.NodeID) *ConeQuerier {
	gates, leaves := n.Cone(root)
	return newConeQuerierFrom(n, root, gates, leaves)
}

// newConeQuerierFrom encodes an already-extracted cone (the 1-cycle
// worker walks each root's cone once for the simulation prefilter and
// hands it over, avoiding a second extraction). Every non-constant leaf
// is queryable.
func newConeQuerierFrom(n *netlist.Netlist, root netlist.NodeID, gates, leaves []netlist.NodeID) *ConeQuerier {
	return newConeQuerierRestricted(n, root, gates, leaves, nil)
}

// newConeQuerierRestricted encodes the cofactor miter for a restricted
// queryable leaf set: queryable (parallel to leaves; nil means all
// non-constant leaves) marks the leaves Depends may later be asked
// about. Every other leaf is hard-shared between the two cone copies —
// a single variable instead of a copy pair plus equality selector —
// which is exactly the "other leaves equal" cofactor condition those
// leaves would always be pinned to anyway. Transitively, any gate whose
// fan-in reaches no queryable leaf computes the same value in both
// copies and is encoded once. When the prefilter has already witnessed
// most leaves, the miter thus collapses to the small sub-cone between
// the unwitnessed leaves and the root.
//
// Depends(leaf) on a non-queryable leaf returns false regardless of the
// true classification — callers restrict queries to the queryable set.
func newConeQuerierRestricted(n *netlist.Netlist, root netlist.NodeID, gates, leaves []netlist.NodeID, queryable []bool) *ConeQuerier {
	q := &ConeQuerier{
		n:      n,
		root:   root,
		b:      cnf.NewBuilder(),
		leaves: leaves,
		copyA:  make(map[netlist.NodeID]sat.Lit, len(leaves)),
		copyB:  make(map[netlist.NodeID]sat.Lit, len(leaves)),
		sel:    make(map[netlist.NodeID]sat.Lit, len(leaves)),
	}
	b := q.b
	// diverging marks nodes that may differ between the copies: the
	// queryable leaves and every gate reachable from one.
	diverging := make(map[netlist.NodeID]bool, len(gates)+len(leaves))
	for i, l := range leaves {
		switch n.Nodes[l].Kind {
		case netlist.KindConst0:
			c := b.Const(false)
			q.copyA[l], q.copyB[l] = c, c
		case netlist.KindConst1:
			c := b.Const(true)
			q.copyA[l], q.copyB[l] = c, c
		default:
			if queryable != nil && !queryable[i] {
				// Hard-shared: both copies read one variable.
				v := b.NewVar()
				q.copyA[l], q.copyB[l] = v, v
				continue
			}
			la, lb, s := b.NewVar(), b.NewVar(), b.NewVar()
			// s -> (la <-> lb): assuming s makes the leaf shared.
			b.S.AddClause(s.Not(), la.Not(), lb)
			b.S.AddClause(s.Not(), la, lb.Not())
			q.copyA[l], q.copyB[l], q.sel[l] = la, lb, s
			diverging[l] = true
		}
	}
	// shared holds single-copy gate encodings; in topological order a
	// gate diverges iff any fan-in does.
	shared := make(map[netlist.NodeID]sat.Lit, len(gates))
	encodeGate := func(out sat.Lit, g netlist.GateType, in []sat.Lit) {
		switch g {
		case netlist.And:
			b.And(out, in...)
		case netlist.Or:
			b.Or(out, in...)
		case netlist.Nand:
			b.Nand(out, in...)
		case netlist.Nor:
			b.Nor(out, in...)
		case netlist.Xor:
			b.Xor(out, in...)
		case netlist.Xnor:
			b.Xnor(out, in...)
		case netlist.Not:
			b.Not(out, in[0])
		case netlist.Buf:
			b.Buf(out, in[0])
		case netlist.Mux:
			b.Mux(out, in[0], in[1], in[2])
		case netlist.Maj:
			b.Majority3(out, in[0], in[1], in[2])
		}
	}
	for _, g := range gates {
		nd := &n.Nodes[g]
		div := false
		for _, f := range nd.Fanin {
			if diverging[f] {
				div = true
				break
			}
		}
		if div {
			diverging[g] = true
			continue
		}
		out := b.NewVar()
		in := make([]sat.Lit, len(nd.Fanin))
		for i, f := range nd.Fanin {
			if l, ok := shared[f]; ok {
				in[i] = l
			} else {
				in[i] = q.copyA[f] // shared leaf (copyA == copyB)
			}
		}
		encodeGate(out, nd.Gate, in)
		shared[g] = out
	}
	encodeCopy := func(leafLit map[netlist.NodeID]sat.Lit) sat.Lit {
		local := make(map[netlist.NodeID]sat.Lit, len(gates)+1)
		lookup := func(id netlist.NodeID) sat.Lit {
			if l, ok := local[id]; ok {
				return l
			}
			if l, ok := shared[id]; ok {
				return l
			}
			return leafLit[id]
		}
		for _, g := range gates {
			if !diverging[g] {
				continue
			}
			nd := &n.Nodes[g]
			out := b.NewVar()
			in := make([]sat.Lit, len(nd.Fanin))
			for i, f := range nd.Fanin {
				in[i] = lookup(f)
			}
			encodeGate(out, nd.Gate, in)
			local[g] = out
		}
		return lookup(root)
	}
	oA := encodeCopy(q.copyA)
	oB := encodeCopy(q.copyB)
	q.diff = b.Different(oA, oB)
	return q
}

// Leaves returns the cone's leaf nodes (inputs, constants, FF outputs)
// in discovery order. The slice is live; do not modify it.
func (q *ConeQuerier) Leaves() []netlist.NodeID { return q.leaves }

// SupportFFs returns the flip-flops in the cone's structural support,
// in leaf discovery order — the same order netlist.SupportFFs reports,
// without re-walking the cone.
func (q *ConeQuerier) SupportFFs() []netlist.FFID {
	var ffs []netlist.FFID
	for _, l := range q.leaves {
		if ff := q.n.FFOfNode(l); ff != netlist.NoFF {
			ffs = append(ffs, ff)
		}
	}
	return ffs
}

// SolverStats returns the underlying solver's cumulative counters
// (decisions, conflicts, ...) across the queries issued so far —
// per-root solver telemetry for query-level trace spans and metrics.
func (q *ConeQuerier) SolverStats() sat.Statistics { return q.b.S.Stats }

// QueryStats returns the solver counters accrued since the previous
// QueryStats call (or since construction): the cost of the queries
// issued in between, rather than the solver-lifetime totals that
// SolverStats reports. Callers attributing work to individual Depends
// calls should read this after each one; the deltas sum to SolverStats.
func (q *ConeQuerier) QueryStats() sat.Statistics {
	cur := q.b.S.Stats
	d := cur.Sub(q.prevStats)
	q.prevStats = cur
	return d
}

// Depends reports whether the root functionally depends on the leaf:
// whether some assignment of the other leaves lets a flip of the leaf
// flip the root — the positive Davio cofactor check of the HVC 2016
// dependency computation. Leaves outside the cone (and constants) are
// never functional.
func (q *ConeQuerier) Depends(leaf netlist.NodeID) bool {
	s, ok := q.sel[leaf]
	if !ok {
		return false // not a (non-constant) cone leaf
	}
	// Assumption order matters for performance, not correctness: the
	// miter output first, then the equality selectors in leaf order,
	// then the cofactor pins of the tested leaf. Consecutive queries
	// over a root's leaves thus share the assumption prefix
	// [diff, sel_0..sel_{j-1}], which the solver's trail reuse keeps
	// propagated between Solve calls instead of rebuilding from level 0.
	q.assume = q.assume[:0]
	q.assume = append(q.assume, q.diff)
	for _, l := range q.leaves {
		if other, ok := q.sel[l]; ok && other != s {
			q.assume = append(q.assume, other)
		}
	}
	q.assume = append(q.assume, q.copyA[leaf].Not(), q.copyB[leaf])
	return q.b.S.Solve(q.assume...) == sat.Sat
}

// FunctionalDepends reports whether the value of node root functionally
// depends on the leaf node (a flip-flop output or primary input). It is
// the one-shot form of ConeQuerier; callers issuing several queries
// against the same root should build a ConeQuerier once and reuse it.
func FunctionalDepends(n *netlist.Netlist, root, leaf netlist.NodeID) bool {
	return NewConeQuerier(n, root).Depends(leaf)
}
