package dep

import (
	"repro/internal/cnf"
	"repro/internal/netlist"
	"repro/internal/sat"
)

// FunctionalDepends reports whether the value of node root functionally
// depends on the leaf node (a flip-flop output or primary input): it
// encodes root's fan-in cone twice, with leaf pinned to 0 in one copy
// and 1 in the other while all other leaves are shared, and asks SAT
// whether the two copies can produce different outputs — the positive
// Davio cofactor check of the HVC 2016 dependency computation.
func FunctionalDepends(n *netlist.Netlist, root, leaf netlist.NodeID) bool {
	gates, leaves := n.Cone(root)

	b := cnf.NewBuilder()
	shared := make(map[netlist.NodeID]sat.Lit, len(leaves))
	inCone := false
	for _, l := range leaves {
		if l == leaf {
			inCone = true
			continue
		}
		switch n.Nodes[l].Kind {
		case netlist.KindConst0:
			shared[l] = b.Const(false)
		case netlist.KindConst1:
			shared[l] = b.Const(true)
		default:
			shared[l] = b.NewVar()
		}
	}
	if !inCone {
		return false // not even structurally dependent
	}

	encodeCopy := func(leafVal bool) sat.Lit {
		local := make(map[netlist.NodeID]sat.Lit, len(gates)+1)
		pinned := b.Const(leafVal)
		lookup := func(id netlist.NodeID) sat.Lit {
			if id == leaf {
				return pinned
			}
			if l, ok := local[id]; ok {
				return l
			}
			return shared[id]
		}
		for _, g := range gates {
			nd := &n.Nodes[g]
			out := b.NewVar()
			in := make([]sat.Lit, len(nd.Fanin))
			for i, f := range nd.Fanin {
				in[i] = lookup(f)
			}
			switch nd.Gate {
			case netlist.And:
				b.And(out, in...)
			case netlist.Or:
				b.Or(out, in...)
			case netlist.Nand:
				b.Nand(out, in...)
			case netlist.Nor:
				b.Nor(out, in...)
			case netlist.Xor:
				b.Xor(out, in...)
			case netlist.Xnor:
				b.Xnor(out, in...)
			case netlist.Not:
				b.Not(out, in[0])
			case netlist.Buf:
				b.Buf(out, in[0])
			case netlist.Mux:
				b.Mux(out, in[0], in[1], in[2])
			case netlist.Maj:
				b.Majority3(out, in[0], in[1], in[2])
			}
			local[g] = out
		}
		return lookup(root)
	}

	o0 := encodeCopy(false)
	o1 := encodeCopy(true)
	return b.S.Solve(b.Different(o0, o1)) == sat.Sat
}
