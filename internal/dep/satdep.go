package dep

import (
	"repro/internal/cnf"
	"repro/internal/netlist"
	"repro/internal/sat"
)

// ConeQuerier answers functional-dependence queries for the leaves of
// one root's fan-in cone against a single shared encoding. The cone is
// extracted and Tseitin-encoded exactly once — two copies of the cone
// with per-leaf equality selectors — and each per-leaf cofactor query
// is an incremental solve under assumptions: the queried leaf is pinned
// to 0 in one copy and 1 in the other while every other leaf's
// selector forces the copies equal. Learned clauses accumulate across
// the queries of one root, so classifying all leaves of a root is far
// cheaper than re-encoding the miter per (root, leaf) pair.
//
// A ConeQuerier is not safe for concurrent use; the 1-cycle worker
// pool creates one per root inside each worker.
type ConeQuerier struct {
	n    *netlist.Netlist
	root netlist.NodeID

	b      *cnf.Builder
	leaves []netlist.NodeID
	// Per non-constant leaf: the two copy literals and the equality
	// selector (sel -> copyA == copyB).
	copyA, copyB, sel map[netlist.NodeID]sat.Lit
	// diff is the miter output: true iff the two copies differ.
	diff sat.Lit
	// assume is the reusable assumption scratch buffer.
	assume []sat.Lit
}

// NewConeQuerier extracts and encodes root's fan-in cone.
func NewConeQuerier(n *netlist.Netlist, root netlist.NodeID) *ConeQuerier {
	gates, leaves := n.Cone(root)
	q := &ConeQuerier{
		n:      n,
		root:   root,
		b:      cnf.NewBuilder(),
		leaves: leaves,
		copyA:  make(map[netlist.NodeID]sat.Lit, len(leaves)),
		copyB:  make(map[netlist.NodeID]sat.Lit, len(leaves)),
		sel:    make(map[netlist.NodeID]sat.Lit, len(leaves)),
	}
	b := q.b
	for _, l := range leaves {
		switch n.Nodes[l].Kind {
		case netlist.KindConst0:
			c := b.Const(false)
			q.copyA[l], q.copyB[l] = c, c
		case netlist.KindConst1:
			c := b.Const(true)
			q.copyA[l], q.copyB[l] = c, c
		default:
			la, lb, s := b.NewVar(), b.NewVar(), b.NewVar()
			// s -> (la <-> lb): assuming s makes the leaf shared.
			b.S.AddClause(s.Not(), la.Not(), lb)
			b.S.AddClause(s.Not(), la, lb.Not())
			q.copyA[l], q.copyB[l], q.sel[l] = la, lb, s
		}
	}
	encodeCopy := func(leafLit map[netlist.NodeID]sat.Lit) sat.Lit {
		local := make(map[netlist.NodeID]sat.Lit, len(gates)+1)
		lookup := func(id netlist.NodeID) sat.Lit {
			if l, ok := local[id]; ok {
				return l
			}
			return leafLit[id]
		}
		for _, g := range gates {
			nd := &n.Nodes[g]
			out := b.NewVar()
			in := make([]sat.Lit, len(nd.Fanin))
			for i, f := range nd.Fanin {
				in[i] = lookup(f)
			}
			switch nd.Gate {
			case netlist.And:
				b.And(out, in...)
			case netlist.Or:
				b.Or(out, in...)
			case netlist.Nand:
				b.Nand(out, in...)
			case netlist.Nor:
				b.Nor(out, in...)
			case netlist.Xor:
				b.Xor(out, in...)
			case netlist.Xnor:
				b.Xnor(out, in...)
			case netlist.Not:
				b.Not(out, in[0])
			case netlist.Buf:
				b.Buf(out, in[0])
			case netlist.Mux:
				b.Mux(out, in[0], in[1], in[2])
			case netlist.Maj:
				b.Majority3(out, in[0], in[1], in[2])
			}
			local[g] = out
		}
		return lookup(root)
	}
	oA := encodeCopy(q.copyA)
	oB := encodeCopy(q.copyB)
	q.diff = b.Different(oA, oB)
	return q
}

// Leaves returns the cone's leaf nodes (inputs, constants, FF outputs)
// in discovery order. The slice is live; do not modify it.
func (q *ConeQuerier) Leaves() []netlist.NodeID { return q.leaves }

// SupportFFs returns the flip-flops in the cone's structural support,
// in leaf discovery order — the same order netlist.SupportFFs reports,
// without re-walking the cone.
func (q *ConeQuerier) SupportFFs() []netlist.FFID {
	var ffs []netlist.FFID
	for _, l := range q.leaves {
		if ff := q.n.FFOfNode(l); ff != netlist.NoFF {
			ffs = append(ffs, ff)
		}
	}
	return ffs
}

// SolverStats returns the underlying solver's cumulative counters
// (decisions, conflicts, ...) across the queries issued so far —
// per-root solver telemetry for query-level trace spans and metrics.
func (q *ConeQuerier) SolverStats() sat.Statistics { return q.b.S.Stats }

// Depends reports whether the root functionally depends on the leaf:
// whether some assignment of the other leaves lets a flip of the leaf
// flip the root — the positive Davio cofactor check of the HVC 2016
// dependency computation. Leaves outside the cone (and constants) are
// never functional.
func (q *ConeQuerier) Depends(leaf netlist.NodeID) bool {
	s, ok := q.sel[leaf]
	if !ok {
		return false // not a (non-constant) cone leaf
	}
	q.assume = q.assume[:0]
	q.assume = append(q.assume, q.diff, q.copyA[leaf].Not(), q.copyB[leaf])
	for _, l := range q.leaves {
		if other, ok := q.sel[l]; ok && other != s {
			q.assume = append(q.assume, other)
		}
	}
	return q.b.S.Solve(q.assume...) == sat.Sat
}

// FunctionalDepends reports whether the value of node root functionally
// depends on the leaf node (a flip-flop output or primary input). It is
// the one-shot form of ConeQuerier; callers issuing several queries
// against the same root should build a ConeQuerier once and reuse it.
func FunctionalDepends(n *netlist.Netlist, root, leaf netlist.NodeID) bool {
	return NewConeQuerier(n, root).Depends(leaf)
}
