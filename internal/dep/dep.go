// Package dep computes the fine-granular data dependencies over circuit
// logic that drive the secure-data-flow method (Section III-A of the
// paper, based on the SAT-based dependency computation of Soeken et al.,
// HVC 2016).
//
// Dependencies are classified on the three-valued lattice
// none < structural < path:
//
//   - a flip-flop b is 1-cycle functionally dependent on a if data can
//     actually propagate from a to b in one cycle (SAT on the cofactor
//     miter of b's next-state cone);
//   - b is only structurally dependent on a if a feeds b's next-state
//     cone but no value change can propagate (e.g. masked by a
//     reconvergence);
//   - b is path-dependent on a if a chain of 1-cycle functional
//     dependencies leads from a to b (multi-cycle closure).
//
// Two feasibility subroutines of the paper are implemented here:
// bridging over internal flip-flops (eliminating flip-flops not
// connected to the scan infrastructure before the cubic multi-cycle
// closure) and, for the scan-register chains themselves, presetting
// (handled by the hybrid analysis when composing the combined graph).
package dep

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitset"
	"repro/internal/engine"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// Kind is a dependency classification.
type Kind uint8

// Dependency kinds, ordered none < structural < path.
const (
	None Kind = iota
	Structural
	Path
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Structural:
		return "structural"
	case Path:
		return "path"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Combine composes two dependencies along a path: the result is Path
// only if both links are Path, None if either is None, and Structural
// otherwise.
func Combine(a, b Kind) Kind {
	if a == None || b == None {
		return None
	}
	if a == Path && b == Path {
		return Path
	}
	return Structural
}

// Max aggregates two dependencies over alternative paths.
func Max(a, b Kind) Kind {
	if a > b {
		return a
	}
	return b
}

// Mode selects how 1-cycle dependencies are classified.
type Mode uint8

const (
	// Exact distinguishes functional from only-structural dependencies
	// with SAT (the proposed method).
	Exact Mode = iota
	// StructuralApprox over-approximates path-dependency by structural
	// dependency (Section IV-C): no SAT calls, every structural
	// dependency is treated as functional.
	StructuralApprox
)

func (m Mode) String() string {
	if m == Exact {
		return "exact"
	}
	return "structural-approx"
}

// Matrix is a dependency relation over flip-flops 0..n-1 with forward
// and reverse adjacency bit sets. Entry (i, j) means "i depends on j",
// i.e. data flows from j to i.
type Matrix struct {
	n    int
	path []*bitset.Set // path[i]: j such that i path-depends on j
	str  []*bitset.Set // str[i] ⊇ path[i]: structural dependency
	// reverse direction, maintained for efficient bridging
	rpath []*bitset.Set // rpath[j]: i such that i path-depends on j
	rstr  []*bitset.Set
}

// NewMatrix returns an empty dependency matrix over n flip-flops.
func NewMatrix(n int) *Matrix {
	m := &Matrix{n: n}
	m.path = make([]*bitset.Set, n)
	m.str = make([]*bitset.Set, n)
	m.rpath = make([]*bitset.Set, n)
	m.rstr = make([]*bitset.Set, n)
	for i := 0; i < n; i++ {
		m.path[i] = bitset.New(n)
		m.str[i] = bitset.New(n)
		m.rpath[i] = bitset.New(n)
		m.rstr[i] = bitset.New(n)
	}
	return m
}

// N returns the number of flip-flops indexed.
func (m *Matrix) N() int { return m.n }

// Set raises the dependency of i on j to at least k.
func (m *Matrix) Set(i, j int, k Kind) {
	switch k {
	case Path:
		m.path[i].Set(j)
		m.rpath[j].Set(i)
		fallthrough
	case Structural:
		m.str[i].Set(j)
		m.rstr[j].Set(i)
	}
}

// Kind returns the dependency of i on j.
func (m *Matrix) Kind(i, j int) Kind {
	if m.path[i].Has(j) {
		return Path
	}
	if m.str[i].Has(j) {
		return Structural
	}
	return None
}

// clearNode removes every dependency entering or leaving node k.
func (m *Matrix) clearNode(k int) {
	m.str[k].ForEach(func(j int) {
		m.rpath[j].Clear(k)
		m.rstr[j].Clear(k)
	})
	m.rstr[k].ForEach(func(i int) {
		m.path[i].Clear(k)
		m.str[i].Clear(k)
	})
	m.path[k].Reset()
	m.str[k].Reset()
	m.rpath[k].Reset()
	m.rstr[k].Reset()
}

// CountDeps returns the number of denoted dependencies (non-None
// entries).
func (m *Matrix) CountDeps() int {
	c := 0
	for i := 0; i < m.n; i++ {
		c += m.str[i].Count()
	}
	return c
}

// CountPath returns the number of Path entries.
func (m *Matrix) CountPath() int {
	c := 0
	for i := 0; i < m.n; i++ {
		c += m.path[i].Count()
	}
	return c
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	cp := &Matrix{n: m.n}
	cl := func(rows []*bitset.Set) []*bitset.Set {
		out := make([]*bitset.Set, len(rows))
		for i, r := range rows {
			out[i] = r.Clone()
		}
		return out
	}
	cp.path = cl(m.path)
	cp.str = cl(m.str)
	cp.rpath = cl(m.rpath)
	cp.rstr = cl(m.rstr)
	return cp
}

// Equal reports whether the two matrices denote exactly the same
// dependencies (same size, same path and structural entries).
func (m *Matrix) Equal(o *Matrix) bool {
	if m.n != o.n {
		return false
	}
	for i := 0; i < m.n; i++ {
		if !m.path[i].Equal(o.path[i]) || !m.str[i].Equal(o.str[i]) {
			return false
		}
	}
	return true
}

// DependsOn returns the set of j on which i depends (structurally or
// more). The returned set is live; do not modify it.
func (m *Matrix) DependsOn(i int) *bitset.Set { return m.str[i] }

// PathDependsOn returns the set of j on which i path-depends.
// The returned set is live; do not modify it.
func (m *Matrix) PathDependsOn(i int) *bitset.Set { return m.path[i] }

// PathDependents returns the set of i that path-depend on j (the
// reverse adjacency). The returned set is live; do not modify it.
func (m *Matrix) PathDependents(j int) *bitset.Set { return m.rpath[j] }

// Stats reports the bookkeeping of one dependency computation.
type Stats struct {
	Mode             Mode
	SATCalls         int
	SimResolved      int   // 1-cycle dependencies witnessed by simulation (no SAT call)
	SimLanes         int64 // 64-bit pattern lanes evaluated by the prefilter
	Functional1Cycle int   // 1-cycle dependencies classified functional
	StructOnly1Cycle int   // 1-cycle dependencies classified only structural
	FFsTotal         int   // flip-flops before bridging
	FFsDenoted       int   // flip-flops after bridging (denoted)
	DepsBeforeBridge int   // 1-cycle dependencies before bridging
	DepsAfterBridge  int   // dependencies after bridging, before closure
	DepsMultiCycle   int   // denoted dependencies after the closure
	ClosurePathDeps  int   // path entries after the closure
	BridgedFFs       int
}

// Result is the outcome of Compute: the multi-cycle dependency matrix
// over denoted flip-flops.
type Result struct {
	// M is the multi-cycle dependency closure. Rows/columns of bridged
	// (internal) flip-flops are empty.
	M *Matrix
	// OneCycle is the 1-cycle matrix before bridging.
	OneCycle *Matrix
	// Denoted[f] reports whether flip-flop f survived bridging.
	Denoted []bool
	Stats   Stats
}

// Kind returns the multi-cycle dependency of flip-flop i on j. Both
// must be denoted.
func (r *Result) Kind(i, j netlist.FFID) Kind { return r.M.Kind(int(i), int(j)) }

// OneCycleMatrix builds the 1-cycle dependency matrix of the circuit.
// In Exact mode every structural dependency is classified with a SAT
// cofactor query; in StructuralApprox mode structural implies path.
func OneCycleMatrix(n *netlist.Netlist, mode Mode, stats *Stats) *Matrix {
	m := NewMatrix(n.NumFFs())
	FillOneCycle(m, n, mode, stats)
	return m
}

// FillOneCycle writes the circuit's 1-cycle dependencies into an
// existing matrix whose indices 0..NumFFs-1 are the circuit flip-flops.
// The matrix may be larger than the circuit (a combined index space
// with scan flip-flops appended, as the hybrid analysis builds).
// It runs the default engine configuration (all CPUs, no cancellation);
// use FillOneCycleOpts for worker control, cancellation and
// instrumentation.
func FillOneCycle(m *Matrix, n *netlist.Netlist, mode Mode, stats *Stats) {
	// The background context never cancels, so the error is always nil.
	_ = FillOneCycleOpts(m, n, mode, stats, engine.Options{})
}

// oneCycleEntry is one classified 1-cycle dependency of a root row.
type oneCycleEntry struct {
	leaf netlist.FFID
	kind Kind
}

// oneCycleRow is the result of one root's unit of work, merged into the
// matrix by the calling goroutine in row order.
type oneCycleRow struct {
	entries                          []oneCycleEntry
	satCalls, functional, structOnly int
	simResolved                      int
	simLanes                         int64
	decisions, conflicts             int64
}

// OneCycleConfig tunes the exact-mode 1-cycle computation.
type OneCycleConfig struct {
	// DisableSimFilter turns off the bit-parallel random-simulation
	// prefilter, forcing every exact-mode classification through a SAT
	// cofactor query (the pre-prefilter behavior; the differential
	// tests compare both paths).
	DisableSimFilter bool
	// SimRounds is the number of 64-pattern simulation rounds per root;
	// zero selects the default.
	SimRounds int
}

// FillOneCycleOpts is FillOneCycle under an engine configuration with
// the default 1-cycle tuning (simulation prefilter enabled).
func FillOneCycleOpts(m *Matrix, n *netlist.Netlist, mode Mode, stats *Stats, opts engine.Options) error {
	return FillOneCycleCfg(m, n, mode, stats, opts, OneCycleConfig{})
}

// FillOneCycleCfg is FillOneCycle under an engine configuration: the
// per-root units of work — extract the root's fan-in cone once, run the
// bit-parallel simulation prefilter over its support leaves, encode the
// shared miter copy once for whatever the prefilter could not witness,
// classify those leaves through an incremental ConeQuerier — fan out
// over a worker pool of opts.WorkerCount() goroutines. Rows are merged
// back into the matrix in root order on the calling goroutine, so
// exact-mode results are bit-identical to the sequential computation,
// and Stats counters are folded without races. Cancellation is honored
// between SAT queries; on cancellation the matrix is left untouched and
// the context error is returned.
func FillOneCycleCfg(m *Matrix, n *netlist.Netlist, mode Mode, stats *Stats, opts engine.Options, cfg OneCycleConfig) error {
	if m.N() < n.NumFFs() {
		panic("dep: matrix smaller than circuit")
	}
	stage := opts.Stage("one-cycle")
	defer stage.Start()()
	useSim := mode == Exact && !cfg.DisableSimFilter
	var simStage *engine.StageStats // nil-tolerant when stats are off
	if useSim {
		simStage = opts.Stage("sim-filter")
	}

	// The units of work: flip-flops with a driven next-state cone.
	var jobs []int
	for b := range n.FFs {
		if n.FFs[b].D != netlist.NoNode {
			jobs = append(jobs, b)
		}
	}
	if len(jobs) == 0 {
		return opts.Err()
	}
	workers := opts.WorkerCount()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}

	span := opts.StartSpan("one-cycle",
		obs.Int("roots", int64(len(jobs))), obs.Int("workers", int64(workers)))
	defer span.End()
	queryOpts := opts.WithParent(span)

	// Solver-level metrics: per-query SAT latency and cumulative
	// decision/conflict counts, live on the stats registry.
	reg := opts.Registry()
	satLatency := reg.Histogram("dep_sat_query_seconds")
	satQueries := reg.Counter("dep_sat_queries_total")
	satDecisions := reg.Counter("dep_sat_decisions_total")
	satConflicts := reg.Counter("dep_sat_conflicts_total")
	simResolved := reg.Counter("dep_sim_resolved_total")
	simLanes := reg.Counter("dep_sim_lanes_total")

	ctx := opts.Ctx()
	rows := make([]oneCycleRow, len(jobs))
	var next atomic.Int64
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := int(next.Add(1)) - 1
				if idx >= len(jobs) || cancelled.Load() {
					return
				}
				if ctx.Err() != nil {
					cancelled.Store(true)
					return
				}
				b := jobs[idx]
				root := n.FFs[b].D
				row := &rows[idx]
				// One cone walk serves the support computation, the
				// simulation prefilter and (if needed) the miter encoding.
				gates, leaves := n.Cone(root)
				type supportLeaf struct {
					ff netlist.FFID
					li int // index into leaves
				}
				var support []supportLeaf
				for li, l := range leaves {
					if ff := n.FFOfNode(l); ff != netlist.NoFF {
						support = append(support, supportLeaf{ff, li})
					}
				}
				// One query span per root's cone — the high-frequency
				// level of the trace hierarchy, subject to sampling.
				qspan := queryOpts.StartSpan("query", obs.Int("root_ff", int64(b)))
				if mode == StructuralApprox {
					for _, sl := range support {
						row.entries = append(row.entries, oneCycleEntry{sl.ff, Path})
					}
					qspan.End()
					continue
				}
				// Bit-parallel prefilter: witnessed[li] means flipping
				// leaf li provably flips the root — functional without
				// a SAT call. Constants are never support leaves, so
				// every tested leaf has a live slot.
				var witnessed []bool
				if useSim && len(support) > 0 {
					simEnd := simStage.Start()
					if sc := newSimCone(n, root, gates, leaves); sc != nil {
						testIdx := make([]int, len(support))
						for k, sl := range support {
							testIdx[k] = sl.li
						}
						wit := sc.filter(cfg.SimRounds, testIdx)
						witnessed = make([]bool, len(leaves))
						for k, li := range testIdx {
							if wit[k] {
								witnessed[li] = true
								row.simResolved++
							}
						}
						row.simLanes = 64 * sc.evals
						simStage.AddQueries(int64(len(support)))
						simStage.AddItems(row.simLanes)
						simStage.AddSaved(int64(row.simResolved))
					}
					simEnd()
				}
				// Whatever the prefilter could not witness goes through
				// the exact cofactor miter; the querier (and its CNF
				// encoding) is only built if some leaf needs it.
				var q *ConeQuerier
				for _, sl := range support {
					if witnessed != nil && witnessed[sl.li] {
						row.functional++
						row.entries = append(row.entries, oneCycleEntry{sl.ff, Path})
						continue
					}
					if ctx.Err() != nil {
						cancelled.Store(true)
						qspan.End()
						return
					}
					if q == nil {
						// With the prefilter's witnesses in hand, only
						// the unwitnessed support leaves are ever
						// queried — the miter encoding collapses around
						// them (hard-shared leaves, single-copy gates).
						var queryable []bool
						if witnessed != nil {
							queryable = make([]bool, len(leaves))
							for _, s2 := range support {
								if !witnessed[s2.li] {
									queryable[s2.li] = true
								}
							}
						}
						q = newConeQuerierRestricted(n, root, gates, leaves, queryable)
					}
					row.satCalls++
					var functional bool
					if satLatency != nil {
						t0 := time.Now()
						functional = q.Depends(n.FFs[sl.ff].Node)
						satLatency.Observe(time.Since(t0).Seconds())
					} else {
						functional = q.Depends(n.FFs[sl.ff].Node)
					}
					// Per-query deltas, not solver-lifetime totals, so
					// span attributes and counters attribute conflicts
					// to the queries that caused them.
					d := q.QueryStats()
					row.decisions += d.Decisions
					row.conflicts += d.Conflicts
					if functional {
						row.functional++
						row.entries = append(row.entries, oneCycleEntry{sl.ff, Path})
					} else {
						row.structOnly++
						row.entries = append(row.entries, oneCycleEntry{sl.ff, Structural})
					}
				}
				satQueries.Add(int64(row.satCalls))
				satDecisions.Add(row.decisions)
				satConflicts.Add(row.conflicts)
				simResolved.Add(int64(row.simResolved))
				simLanes.Add(row.simLanes)
				qspan.SetAttrs(obs.Int("sat_queries", int64(row.satCalls)),
					obs.Int("sim_resolved", int64(row.simResolved)),
					obs.Int("decisions", row.decisions), obs.Int("conflicts", row.conflicts))
				qspan.End()
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}

	// Deterministic row-ordered merge.
	satCalls, simSolved := 0, 0
	for idx, b := range jobs {
		row := &rows[idx]
		for _, e := range row.entries {
			m.Set(b, int(e.leaf), e.kind)
		}
		stats.SATCalls += row.satCalls
		stats.SimResolved += row.simResolved
		stats.SimLanes += row.simLanes
		stats.Functional1Cycle += row.functional
		stats.StructOnly1Cycle += row.structOnly
		satCalls += row.satCalls
		simSolved += row.simResolved
	}
	stage.AddQueries(int64(satCalls))
	span.SetAttrs(obs.Int("sat_queries", int64(satCalls)), obs.Int("sim_resolved", int64(simSolved)))
	opts.Logf("one-cycle: %d roots, %d SAT queries (%d sim-resolved) over %d workers",
		len(jobs), satCalls, simSolved, workers)
	return nil
}

// fillOneCycleSequential is the pre-engine computation — one full miter
// encoding per (root, leaf) pair on a single goroutine. It is retained
// as the reference implementation for differential tests and the
// sequential benchmark baseline.
func fillOneCycleSequential(m *Matrix, n *netlist.Netlist, mode Mode, stats *Stats) {
	if m.N() < n.NumFFs() {
		panic("dep: matrix smaller than circuit")
	}
	for b := range n.FFs {
		root := n.FFs[b].D
		if root == netlist.NoNode {
			continue
		}
		for _, a := range n.SupportFFs(root) {
			if mode == StructuralApprox {
				m.Set(b, int(a), Path)
				continue
			}
			stats.SATCalls++
			if NewConeQuerier(n, root).Depends(n.FFs[a].Node) {
				stats.Functional1Cycle++
				m.Set(b, int(a), Path)
			} else {
				stats.StructOnly1Cycle++
				m.Set(b, int(a), Structural)
			}
		}
	}
}

// Bridge eliminates the given internal flip-flops from the matrix, one
// at a time (Figure 3): for every predecessor j and dependent i of an
// internal flip-flop k, the dependency of i on j is raised to
// Combine(dep(i,k), dep(k,j)); afterwards k carries no dependencies.
// Bridge modifies m in place.
func Bridge(m *Matrix, internal []netlist.FFID) {
	for _, kf := range internal {
		k := int(kf)
		// Snapshot k's neighbors before clearing.
		type edge struct {
			node int
			kind Kind
		}
		var preds, dependents []edge
		m.str[k].ForEach(func(j int) {
			if j == k {
				return // self-loops never strengthen bridged deps
			}
			preds = append(preds, edge{j, m.Kind(k, j)})
		})
		m.rstr[k].ForEach(func(i int) {
			if i == k {
				return
			}
			dependents = append(dependents, edge{i, m.Kind(i, k)})
		})
		for _, d := range dependents {
			for _, p := range preds {
				k2 := Combine(d.kind, p.kind)
				if k2 != None && m.Kind(d.node, p.node) < k2 {
					m.Set(d.node, p.node, k2)
				}
			}
		}
		m.clearNode(k)
	}
}

// Closure computes the multi-cycle dependency closure in place: the
// transitive closure of path edges and, independently, of structural
// edges (a chain containing any only-structural link is structural).
// The algorithm is the sparse SCC condensation of closure.go; use
// ClosureOpts for worker control and cancellation, ClosureWarshall for
// the dense reference computation.
func Closure(m *Matrix) {
	// The background context never cancels, so the error is always nil.
	_ = ClosureOpts(m, engine.Options{})
}

// ClosureWarshall is the dense bit-parallel Warshall closure — cubic in
// the matrix dimension regardless of sparsity. It is retained as the
// reference implementation for differential tests
// (TestSCCClosureMatchesWarshall) and the benchmark baseline.
func ClosureWarshall(m *Matrix) {
	warshall := func(rows []*bitset.Set) {
		n := len(rows)
		for k := 0; k < n; k++ {
			rk := rows[k]
			if !rk.Any() {
				continue
			}
			for i := 0; i < n; i++ {
				if i != k && rows[i].Has(k) {
					rows[i].Or(rk)
				}
			}
		}
	}
	warshall(m.path)
	warshall(m.str)
	rebuildReverse(m)
}

// rebuildReverse recomputes the reverse adjacency from the forward rows.
func rebuildReverse(m *Matrix) {
	for i := 0; i < m.n; i++ {
		if m.rpath[i] == nil {
			m.rpath[i] = bitset.New(m.n)
			m.rstr[i] = bitset.New(m.n)
			continue
		}
		m.rpath[i].Reset()
		m.rstr[i].Reset()
	}
	for i := 0; i < m.n; i++ {
		m.path[i].ForEach(func(j int) { m.rpath[j].Set(i) })
		m.str[i].ForEach(func(j int) { m.rstr[j].Set(i) })
	}
}

// ClosureK computes the k-cycle-bounded dependency relation in place:
// entry (i, j) is set when a dependency chain of at most k 1-cycle
// links leads from j to i (the bounded variant of the HVC 2016
// iterative computation; Closure is the k → ∞ fixpoint). k <= 1 leaves
// the matrix unchanged.
func ClosureK(m *Matrix, k int) {
	if k <= 1 {
		return
	}
	// Relax k-1 times: D_{t+1} = D_t ∪ D_1∘D_t, each step against a
	// frozen snapshot so chains never exceed t+1 links.
	base := m.Clone()
	for step := 1; step < k; step++ {
		prev := m.Clone()
		changed := false
		for i := 0; i < m.n; i++ {
			base.path[i].ForEach(func(via int) {
				if m.path[i].Or(prev.path[via]) {
					changed = true
				}
			})
			base.str[i].ForEach(func(via int) {
				if m.str[i].Or(prev.str[via]) {
					changed = true
				}
			})
		}
		if !changed {
			break
		}
	}
	rebuildReverse(m)
}

// Compute runs the full data-flow analysis of Section III-A over the
// circuit: 1-cycle dependencies, bridging over the internal flip-flops,
// and the iterative multi-cycle closure on the reduced (denoted) set.
func Compute(n *netlist.Netlist, internal []netlist.FFID, mode Mode) *Result {
	res := &Result{}
	res.Stats.Mode = mode
	res.Stats.FFsTotal = n.NumFFs()

	one := OneCycleMatrix(n, mode, &res.Stats)
	res.OneCycle = one
	res.Stats.DepsBeforeBridge = one.CountDeps()

	m := one.Clone()
	Bridge(m, internal)
	res.Stats.BridgedFFs = len(internal)
	res.Stats.FFsDenoted = n.NumFFs() - len(internal)
	res.Stats.DepsAfterBridge = m.CountDeps()

	Closure(m)
	res.M = m
	res.Stats.DepsMultiCycle = m.CountDeps()
	res.Stats.ClosurePathDeps = m.CountPath()

	res.Denoted = make([]bool, n.NumFFs())
	for i := range res.Denoted {
		res.Denoted[i] = true
	}
	for _, k := range internal {
		res.Denoted[k] = false
	}
	return res
}
