package dep

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/netlist"
)

// TestSimFilterMatchesPureSAT is the prefilter's differential gate:
// exact-mode matrices with the simulation prefilter enabled must be
// bit-identical to the pure-SAT path at every worker count. The pure
// path (DisableSimFilter) also uses the unrestricted miter encoding,
// so this covers both the prefilter's verdicts and the restricted
// encoding built around them.
func TestSimFilterMatchesPureSAT(t *testing.T) {
	for _, name := range []string{"BasicSCB", "TreeFlat", "MBIST_1_5_5"} {
		t.Run(name, func(t *testing.T) {
			n := catalogCircuit(t, name, 0.15, 7)
			pure := NewMatrix(n.NumFFs())
			var pureStats Stats
			err := FillOneCycleCfg(pure, n, Exact, &pureStats, engine.Options{Workers: 2},
				OneCycleConfig{DisableSimFilter: true})
			if err != nil {
				t.Fatal(err)
			}
			if pureStats.SimResolved != 0 || pureStats.SimLanes != 0 {
				t.Fatalf("disabled prefilter still recorded sim work: %+v", pureStats)
			}
			for _, workers := range []int{1, 3, 8} {
				filt := NewMatrix(n.NumFFs())
				var filtStats Stats
				err := FillOneCycleOpts(filt, n, Exact, &filtStats, engine.Options{Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !filt.Equal(pure) {
					t.Fatalf("workers=%d: prefiltered matrix differs from pure-SAT matrix", workers)
				}
				// Every leaf is classified exactly once, by simulation or
				// by SAT; the split must be worker-count independent.
				if filtStats.SATCalls+filtStats.SimResolved != pureStats.SATCalls {
					t.Fatalf("workers=%d: SAT %d + sim %d != pure SAT %d", workers,
						filtStats.SATCalls, filtStats.SimResolved, pureStats.SATCalls)
				}
				if filtStats.Functional1Cycle != pureStats.Functional1Cycle ||
					filtStats.StructOnly1Cycle != pureStats.StructOnly1Cycle {
					t.Fatalf("workers=%d: classification counts diverge: %+v vs %+v",
						workers, filtStats, pureStats)
				}
				if filtStats.SimResolved == 0 {
					t.Fatalf("workers=%d: prefilter witnessed nothing on %s", workers, name)
				}
			}
		})
	}
}

// TestSimFilterRandomCircuits widens the differential over generated
// circuits of varying shape and checks worker-count determinism of the
// sim/SAT split (the per-root RNG stream depends only on the root).
func TestSimFilterRandomCircuits(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := netlist.Generate(netlist.DefaultGenConfig([]string{"a", "b", "c"}, 4), seed)
		pure := NewMatrix(g.N.NumFFs())
		var pureStats Stats
		if err := FillOneCycleCfg(pure, g.N, Exact, &pureStats, engine.Options{Workers: 3},
			OneCycleConfig{DisableSimFilter: true}); err != nil {
			t.Fatal(err)
		}
		var firstSim int
		for _, workers := range []int{1, 4} {
			filt := NewMatrix(g.N.NumFFs())
			var filtStats Stats
			if err := FillOneCycleOpts(filt, g.N, Exact, &filtStats, engine.Options{Workers: workers}); err != nil {
				t.Fatal(err)
			}
			if !filt.Equal(pure) {
				t.Fatalf("seed %d workers %d: matrices differ", seed, workers)
			}
			if workers == 1 {
				firstSim = filtStats.SimResolved
			} else if filtStats.SimResolved != firstSim {
				t.Fatalf("seed %d: sim-resolved differs by worker count: %d vs %d",
					seed, firstSim, filtStats.SimResolved)
			}
		}
	}
}

// TestSimWitnessSoundness checks the prefilter's one-sided guarantee
// directly: every leaf it witnesses must be confirmed functional by the
// exact cofactor miter.
func TestSimWitnessSoundness(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := netlist.Generate(netlist.DefaultGenConfig([]string{"x", "y"}, 4), seed)
		n := g.N
		for b := range n.FFs {
			root := n.FFs[b].D
			if root == netlist.NoNode {
				continue
			}
			gates, leaves := n.Cone(root)
			sc := newSimCone(n, root, gates, leaves)
			if sc == nil {
				continue
			}
			var testIdx []int
			for li, l := range leaves {
				if n.FFOfNode(l) != netlist.NoFF {
					testIdx = append(testIdx, li)
				}
			}
			wit := sc.filter(0, testIdx)
			for k, li := range testIdx {
				if wit[k] && !FunctionalDepends(n, root, leaves[li]) {
					t.Fatalf("seed %d root %d: sim witnessed leaf %d but SAT says not functional",
						seed, root, leaves[li])
				}
			}
		}
	}
}

// TestSimConeAgreesWithEvalGate cross-checks the word evaluator against
// the scalar netlist evaluator on random leaf assignments.
func TestSimConeAgreesWithEvalGate(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := netlist.Generate(netlist.DefaultGenConfig([]string{"p", "q"}, 3), seed)
		n := g.N
		for b := range n.FFs {
			root := n.FFs[b].D
			if root == netlist.NoNode || n.Nodes[root].Kind != netlist.KindGate {
				continue
			}
			gates, leaves := n.Cone(root)
			sc := newSimCone(n, root, gates, leaves)
			if sc == nil {
				continue
			}
			// Assign lane-0 bits and compare against scalar evaluation.
			rng := splitmix64(uint64(seed)*977 + 13)
			vals := make(map[netlist.NodeID]bool, len(leaves)+len(gates))
			for li, l := range leaves {
				s := sc.leafSlots[li]
				switch n.Nodes[l].Kind {
				case netlist.KindConst0:
					vals[l] = false
				case netlist.KindConst1:
					vals[l] = true
				default:
					w := rng.next()
					sc.words[s] = w
					vals[l] = w&1 == 1
				}
			}
			got := sc.eval()&1 == 1
			in := make([]bool, 0, 4)
			for _, gid := range gates {
				nd := &n.Nodes[gid]
				in = in[:0]
				for _, f := range nd.Fanin {
					in = append(in, vals[f])
				}
				vals[gid] = netlist.EvalGate(nd.Gate, in)
			}
			if want := vals[root]; got != want {
				t.Fatalf("seed %d root %d: word eval %v, scalar eval %v", seed, root, got, want)
			}
		}
	}
}

// TestQueryStatsDeltas checks the per-query solver accounting: the
// deltas reported after each Depends call must sum to the querier's
// cumulative SolverStats, and no delta may be negative.
func TestQueryStatsDeltas(t *testing.T) {
	n := catalogCircuit(t, "BasicSCB", 0.15, 7)
	checked := 0
	for b := range n.FFs {
		root := n.FFs[b].D
		if root == netlist.NoNode {
			continue
		}
		q := NewConeQuerier(n, root)
		sum := q.QueryStats() // construction may propagate; fold it in
		for _, a := range q.SupportFFs() {
			q.Depends(n.FFs[a].Node)
			d := q.QueryStats()
			if d.Decisions < 0 || d.Conflicts < 0 || d.Propagations < 0 {
				t.Fatalf("negative per-query delta: %+v", d)
			}
			sum.Decisions += d.Decisions
			sum.Conflicts += d.Conflicts
			sum.Propagations += d.Propagations
			checked++
		}
		total := q.SolverStats()
		if sum.Decisions != total.Decisions || sum.Conflicts != total.Conflicts ||
			sum.Propagations != total.Propagations {
			t.Fatalf("root %d: query deltas %+v do not sum to cumulative %+v", root, sum, total)
		}
	}
	if checked == 0 {
		t.Fatal("no queries exercised")
	}
}
