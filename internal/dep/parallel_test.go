package dep

import (
	"context"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/netlist"
)

// catalogCircuit reconstructs the attached circuit of a scaled catalog
// benchmark, the same structures the experimental protocol runs on.
func catalogCircuit(t testing.TB, name string, scale float64, seed int64) *netlist.Netlist {
	t.Helper()
	b, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	nw := b.Build(scale)
	return bench.AttachCircuit(nw, bench.DefaultCircuitConfig(), seed).Circuit
}

// TestParallelOneCycleMatchesSequential checks the engine's determinism
// guarantee: the pooled per-root computation produces a matrix
// bit-identical to the sequential reference, in both dependency modes,
// for any worker count.
func TestParallelOneCycleMatchesSequential(t *testing.T) {
	for _, name := range []string{"BasicSCB", "TreeFlat", "MBIST_1_5_5"} {
		for _, mode := range []Mode{Exact, StructuralApprox} {
			t.Run(name+"/"+mode.String(), func(t *testing.T) {
				n := catalogCircuit(t, name, 0.15, 7)
				seq := NewMatrix(n.NumFFs())
				var seqStats Stats
				fillOneCycleSequential(seq, n, mode, &seqStats)
				for _, workers := range []int{1, 3, 8} {
					par := NewMatrix(n.NumFFs())
					var parStats Stats
					err := FillOneCycleOpts(par, n, mode, &parStats, engine.Options{Workers: workers})
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					if !par.Equal(seq) {
						t.Fatalf("workers=%d mode=%v: parallel matrix differs from sequential", workers, mode)
					}
					// The prefilter answers some queries by simulation,
					// so the pooled path's SAT calls plus sim-resolved
					// leaves must cover exactly the sequential SAT calls.
					if parStats.SATCalls+parStats.SimResolved != seqStats.SATCalls ||
						parStats.Functional1Cycle != seqStats.Functional1Cycle ||
						parStats.StructOnly1Cycle != seqStats.StructOnly1Cycle {
						t.Fatalf("workers=%d: stats diverge: parallel %+v sequential %+v", workers, parStats, seqStats)
					}
				}
			})
		}
	}
}

// TestParallelOneCycleRandomCircuits widens the differential check over
// generated circuits of varying shape.
func TestParallelOneCycleRandomCircuits(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := netlist.Generate(netlist.DefaultGenConfig([]string{"a", "b", "c"}, 4), seed)
		seq := NewMatrix(g.N.NumFFs())
		var seqStats Stats
		fillOneCycleSequential(seq, g.N, Exact, &seqStats)
		par := NewMatrix(g.N.NumFFs())
		var parStats Stats
		if err := FillOneCycleOpts(par, g.N, Exact, &parStats, engine.Options{Workers: 4}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !par.Equal(seq) {
			t.Fatalf("seed %d: parallel matrix differs from sequential", seed)
		}
	}
}

// TestOneCycleCancellation checks that a cancelled context stops the
// computation with the context's error and leaves the matrix untouched.
func TestOneCycleCancellation(t *testing.T) {
	n := catalogCircuit(t, "BasicSCB", 0.15, 7)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the run starts
	m := NewMatrix(n.NumFFs())
	var stats Stats
	err := FillOneCycleOpts(m, n, Exact, &stats, engine.Options{Context: ctx, Workers: 2})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if m.CountDeps() != 0 {
		t.Fatalf("cancelled run wrote %d entries into the matrix", m.CountDeps())
	}

	// An already-expired deadline behaves the same.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer dcancel()
	m2 := NewMatrix(n.NumFFs())
	err = FillOneCycleOpts(m2, n, Exact, &stats, engine.Options{Context: dctx})
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if m2.CountDeps() != 0 {
		t.Fatal("expired run wrote into the matrix")
	}
}

// BenchmarkOneCycleSequential is the pre-engine baseline: one full
// miter encoding per (root, leaf) pair.
func BenchmarkOneCycleSequential(b *testing.B) {
	g := netlist.Generate(netlist.DefaultGenConfig([]string{"a", "b", "c", "d"}, 8), 4)
	m := NewMatrix(g.N.NumFFs())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var st Stats
		fillOneCycleSequential(m, g.N, Exact, &st)
	}
}

// BenchmarkOneCycleParallel is the engine path: per-root cone
// extraction and shared-miter encoding once, incremental cofactor
// queries per leaf, fanned over the worker pool.
func BenchmarkOneCycleParallel(b *testing.B) {
	g := netlist.Generate(netlist.DefaultGenConfig([]string{"a", "b", "c", "d"}, 8), 4)
	m := NewMatrix(g.N.NumFFs())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var st Stats
		if err := FillOneCycleOpts(m, g.N, Exact, &st, engine.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
