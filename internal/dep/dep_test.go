package dep

import (
	"math/rand"
	"testing"

	"repro/internal/netlist"
)

func TestCombine(t *testing.T) {
	cases := []struct{ a, b, want Kind }{
		{Path, Path, Path},
		{Path, Structural, Structural},
		{Structural, Path, Structural},
		{Structural, Structural, Structural},
		{None, Path, None},
		{Path, None, None},
		{None, None, None},
	}
	for _, c := range cases {
		if got := Combine(c.a, c.b); got != c.want {
			t.Errorf("Combine(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestMax(t *testing.T) {
	if Max(Structural, Path) != Path || Max(None, Structural) != Structural || Max(None, None) != None {
		t.Fatal("Max wrong")
	}
}

func TestKindString(t *testing.T) {
	if None.String() != "none" || Structural.String() != "structural" || Path.String() != "path" {
		t.Fatal("Kind.String")
	}
	if Exact.String() != "exact" || StructuralApprox.String() != "structural-approx" {
		t.Fatal("Mode.String")
	}
}

func TestFunctionalDependsBuf(t *testing.T) {
	n := netlist.New()
	m := n.AddModule("m")
	a := n.AddFF("a", m)
	b := n.AddFF("b", m)
	n.SetFFInput(a, n.FFs[a].Node)
	d := n.AddGate(netlist.Buf, n.FFs[a].Node)
	n.SetFFInput(b, d)
	if !FunctionalDepends(n, d, n.FFs[a].Node) {
		t.Fatal("buf must be functional")
	}
	if FunctionalDepends(n, d, n.FFs[b].Node) {
		t.Fatal("b is not in the cone")
	}
}

func TestFunctionalDependsDirectWire(t *testing.T) {
	// b.D wired directly to a's output node (no gate).
	n := netlist.New()
	m := n.AddModule("m")
	a := n.AddFF("a", m)
	if !FunctionalDepends(n, n.FFs[a].Node, n.FFs[a].Node) {
		t.Fatal("a node depends on itself trivially")
	}
}

func TestFunctionalDependsMaskedReconvergence(t *testing.T) {
	// out = XOR(s, XOR(s, c)) == c: structural on s, functional on c.
	n := netlist.New()
	m := n.AddModule("m")
	s := n.AddFF("s", m)
	c := n.AddFF("c", m)
	inner := n.AddGate(netlist.Xor, n.FFs[s].Node, n.FFs[c].Node)
	outer := n.AddGate(netlist.Xor, n.FFs[s].Node, inner)
	if FunctionalDepends(n, outer, n.FFs[s].Node) {
		t.Fatal("masked signal must not be functional")
	}
	if !FunctionalDepends(n, outer, n.FFs[c].Node) {
		t.Fatal("carrier must be functional")
	}
}

func TestFunctionalDependsConstantMask(t *testing.T) {
	// out = AND(a, const0): structural-only on a.
	n := netlist.New()
	m := n.AddModule("m")
	a := n.AddFF("a", m)
	zero := n.AddConst(false)
	out := n.AddGate(netlist.And, n.FFs[a].Node, zero)
	if FunctionalDepends(n, out, n.FFs[a].Node) {
		t.Fatal("AND with 0 cannot propagate")
	}
	one := n.AddConst(true)
	out2 := n.AddGate(netlist.And, n.FFs[a].Node, one)
	if !FunctionalDepends(n, out2, n.FFs[a].Node) {
		t.Fatal("AND with 1 must propagate")
	}
}

// coneEval evaluates node id over a leaf assignment, recursively.
func coneEval(n *netlist.Netlist, id netlist.NodeID, leaves map[netlist.NodeID]bool) bool {
	if v, ok := leaves[id]; ok {
		return v
	}
	nd := &n.Nodes[id]
	switch nd.Kind {
	case netlist.KindConst0:
		return false
	case netlist.KindConst1:
		return true
	case netlist.KindGate:
		in := make([]bool, len(nd.Fanin))
		for i, f := range nd.Fanin {
			in[i] = coneEval(n, f, leaves)
		}
		return netlist.EvalGate(nd.Gate, in)
	}
	panic("unassigned leaf in coneEval")
}

// bruteDepends checks functional dependence by enumerating all leaf
// assignments.
func bruteDepends(n *netlist.Netlist, root, leaf netlist.NodeID) bool {
	_, leaves := n.Cone(root)
	var free []netlist.NodeID
	found := false
	for _, l := range leaves {
		if l == leaf {
			found = true
			continue
		}
		if k := n.Nodes[l].Kind; k == netlist.KindConst0 || k == netlist.KindConst1 {
			continue
		}
		free = append(free, l)
	}
	if !found {
		return false
	}
	for m := 0; m < 1<<uint(len(free)); m++ {
		asg := map[netlist.NodeID]bool{}
		for i, l := range free {
			asg[l] = m>>uint(i)&1 == 1
		}
		asg[leaf] = false
		v0 := coneEval(n, root, asg)
		asg[leaf] = true
		v1 := coneEval(n, root, asg)
		if v0 != v1 {
			return true
		}
	}
	return false
}

func TestFunctionalDependsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 60; iter++ {
		n := netlist.New()
		mod := n.AddModule("m")
		nLeaves := 3 + rng.Intn(4)
		var leafNodes []netlist.NodeID
		for i := 0; i < nLeaves; i++ {
			if rng.Intn(4) == 0 {
				leafNodes = append(leafNodes, n.AddInput("pi"))
			} else {
				f := n.AddFF("f", mod)
				n.SetFFInput(f, n.FFs[f].Node)
				leafNodes = append(leafNodes, n.FFs[f].Node)
			}
		}
		nodes := append([]netlist.NodeID{}, leafNodes...)
		var root netlist.NodeID = nodes[0]
		for g := 0; g < 6+rng.Intn(8); g++ {
			a := nodes[rng.Intn(len(nodes))]
			b := nodes[rng.Intn(len(nodes))]
			c := nodes[rng.Intn(len(nodes))]
			var o netlist.NodeID
			switch rng.Intn(6) {
			case 0:
				o = n.AddGate(netlist.And, a, b)
			case 1:
				o = n.AddGate(netlist.Or, a, b)
			case 2:
				o = n.AddGate(netlist.Xor, a, b)
			case 3:
				o = n.AddGate(netlist.Not, a)
			case 4:
				o = n.AddGate(netlist.Mux, a, b, c)
			default:
				o = n.AddGate(netlist.Maj, a, b, c)
			}
			nodes = append(nodes, o)
			root = o
		}
		for _, leaf := range leafNodes {
			want := bruteDepends(n, root, leaf)
			got := FunctionalDepends(n, root, leaf)
			if got != want {
				t.Fatalf("iter %d: FunctionalDepends=%v brute=%v", iter, got, want)
			}
		}
	}
}

func TestMatrixSetKind(t *testing.T) {
	m := NewMatrix(4)
	m.Set(1, 0, Structural)
	m.Set(2, 1, Path)
	if m.Kind(1, 0) != Structural || m.Kind(2, 1) != Path || m.Kind(0, 1) != None {
		t.Fatal("Kind wrong")
	}
	// Raising structural to path must work.
	m.Set(1, 0, Path)
	if m.Kind(1, 0) != Path {
		t.Fatal("raise to Path failed")
	}
	if m.CountDeps() != 2 || m.CountPath() != 2 {
		t.Fatalf("counts: deps=%d path=%d", m.CountDeps(), m.CountPath())
	}
}

// TestBridgeFigure3 reproduces the paper's Figure 3 bridging trace.
func TestBridgeFigure3(t *testing.T) {
	// Indices: F5=0, F6=1, IF1=2, IF2=3, F9=4.
	m := NewMatrix(5)
	m.Set(4, 3, Path)       // F9 on IF2
	m.Set(3, 2, Path)       // IF2 on IF1
	m.Set(2, 1, Structural) // IF1 on F6 (str.)
	m.Set(2, 0, Path)       // IF1 on F5
	Bridge(m, []netlist.FFID{2, 3})
	if got := m.Kind(4, 0); got != Path {
		t.Errorf("F9 on F5 = %v, want path", got)
	}
	if got := m.Kind(4, 1); got != Structural {
		t.Errorf("F9 on F6 = %v, want structural", got)
	}
	// Bridged nodes carry nothing.
	for j := 0; j < 5; j++ {
		if m.Kind(2, j) != None || m.Kind(3, j) != None || m.Kind(j, 2) != None || m.Kind(j, 3) != None {
			t.Fatal("bridged flip-flops must be cleared")
		}
	}
	if m.CountDeps() != 2 {
		t.Fatalf("CountDeps = %d, want 2", m.CountDeps())
	}
}

func TestBridgeIntermediateStep(t *testing.T) {
	// After bridging only IF1, Figure 3 shows IF2 on F6 (str.) and
	// IF2 on F5 (path) with F9 on IF2 unchanged.
	m := NewMatrix(5)
	m.Set(4, 3, Path)
	m.Set(3, 2, Path)
	m.Set(2, 1, Structural)
	m.Set(2, 0, Path)
	Bridge(m, []netlist.FFID{2})
	if m.Kind(3, 1) != Structural || m.Kind(3, 0) != Path || m.Kind(4, 3) != Path {
		t.Fatalf("intermediate state wrong: %v %v %v", m.Kind(3, 1), m.Kind(3, 0), m.Kind(4, 3))
	}
}

func TestBridgeSelfLoop(t *testing.T) {
	// k depends on itself; bridging must not corrupt others.
	m := NewMatrix(3)
	m.Set(1, 1, Path) // self loop on the internal FF
	m.Set(1, 0, Path)
	m.Set(2, 1, Path)
	Bridge(m, []netlist.FFID{1})
	if m.Kind(2, 0) != Path {
		t.Fatalf("bridged dep = %v, want path", m.Kind(2, 0))
	}
}

// floydReference computes the semiring closure by iterated relaxation.
func floydReference(d [][]Kind) {
	n := len(d)
	for {
		changed := false
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					c := Combine(d[i][k], d[k][j])
					if Max(d[i][j], c) != d[i][j] {
						d[i][j] = Max(d[i][j], c)
						changed = true
					}
				}
			}
		}
		if !changed {
			return
		}
	}
}

func TestClosureAgainstFloyd(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 60; iter++ {
		n := 3 + rng.Intn(10)
		m := NewMatrix(n)
		ref := make([][]Kind, n)
		for i := range ref {
			ref[i] = make([]Kind, n)
		}
		for e := 0; e < n*2; e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			k := Kind(1 + rng.Intn(2))
			m.Set(i, j, k)
			ref[i][j] = Max(ref[i][j], k)
		}
		Closure(m)
		floydReference(ref)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if m.Kind(i, j) != ref[i][j] {
					t.Fatalf("iter %d: closure (%d,%d) = %v, ref %v", iter, i, j, m.Kind(i, j), ref[i][j])
				}
			}
		}
	}
}

func TestClosureChainSemantics(t *testing.T) {
	// a -> b (path), b -> c (str), c -> d (path):
	// d on a must be structural; c on a structural; b on a path... note
	// direction: Set(i, j) = i depends on j.
	m := NewMatrix(4)
	m.Set(1, 0, Path)
	m.Set(2, 1, Structural)
	m.Set(3, 2, Path)
	Closure(m)
	if m.Kind(1, 0) != Path {
		t.Error("b on a must stay path")
	}
	if m.Kind(2, 0) != Structural {
		t.Error("c on a must be structural")
	}
	if m.Kind(3, 0) != Structural {
		t.Error("d on a must be structural")
	}
	if m.Kind(3, 1) != Structural {
		t.Error("d on b must be structural")
	}
	if m.Kind(3, 2) != Path {
		t.Error("d on c must stay path")
	}
}

func TestClosureIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 12
	m := NewMatrix(n)
	for e := 0; e < 30; e++ {
		m.Set(rng.Intn(n), rng.Intn(n), Kind(1+rng.Intn(2)))
	}
	Closure(m)
	snapshot := m.Clone()
	Closure(m)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if m.Kind(i, j) != snapshot.Kind(i, j) {
				t.Fatal("closure not idempotent")
			}
		}
	}
}

func TestComputeOnGeneratedCircuit(t *testing.T) {
	g := netlist.Generate(netlist.DefaultGenConfig([]string{"a", "b", "c"}, 4), 5)
	res := Compute(g.N, g.InternalFFs, Exact)
	if res.Stats.FFsTotal != g.N.NumFFs() {
		t.Fatal("FFsTotal wrong")
	}
	if res.Stats.FFsDenoted != g.N.NumFFs()-len(g.InternalFFs) {
		t.Fatal("FFsDenoted wrong")
	}
	for _, k := range g.InternalFFs {
		if res.Denoted[k] {
			t.Fatal("internal FF marked denoted")
		}
		for j := 0; j < res.M.N(); j++ {
			if res.M.Kind(int(k), j) != None || res.M.Kind(j, int(k)) != None {
				t.Fatal("internal FF carries dependencies after bridging")
			}
		}
	}
	if res.Stats.SATCalls == 0 {
		t.Fatal("exact mode must issue SAT calls")
	}
	// Path entries are always a subset of structural entries.
	for i := 0; i < res.M.N(); i++ {
		p := res.M.PathDependsOn(i).Clone()
		p.AndNot(res.M.DependsOn(i))
		if p.Any() {
			t.Fatal("path not subset of structural")
		}
	}
}

func TestStructuralApproxDominatesExact(t *testing.T) {
	g := netlist.Generate(netlist.DefaultGenConfig([]string{"a", "b"}, 5), 8)
	exact := Compute(g.N, g.InternalFFs, Exact)
	approx := Compute(g.N, g.InternalFFs, StructuralApprox)
	if approx.Stats.SATCalls != 0 {
		t.Fatal("approx mode must not call SAT")
	}
	n := exact.M.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			e, a := exact.M.Kind(i, j), approx.M.Kind(i, j)
			// Approx treats every structural dep as path, so its path
			// relation over-approximates the exact one.
			if e == Path && a != Path {
				t.Fatalf("(%d,%d): exact path missing in approx", i, j)
			}
			if e != None && a == None {
				t.Fatalf("(%d,%d): approx lost dependency", i, j)
			}
		}
	}
	if approx.M.CountPath() < exact.M.CountPath() {
		t.Fatal("approx path count must dominate")
	}
}

// TestComputeAgainstSimulation spot-checks that a Path-classified
// multi-cycle dependency is real: simulating the circuit from two
// states differing only in the source eventually produces a difference
// somewhere (weak check), and that None entries never propagate.
func TestComputeMatchesOneCycleSimulation(t *testing.T) {
	g := netlist.Generate(netlist.DefaultGenConfig([]string{"a", "b"}, 3), 13)
	n := g.N
	res := Compute(n, nil, Exact) // no bridging: check 1-cycle entries
	rng := rand.New(rand.NewSource(2))
	// For every 1-cycle functional dep (b on a), find by random search a
	// witness state where flipping a flips b's next state.
	for b := 0; b < n.NumFFs(); b++ {
		for a := 0; a < n.NumFFs(); a++ {
			if res.OneCycle.Kind(b, a) != Path {
				continue
			}
			found := false
			for trial := 0; trial < 2000 && !found; trial++ {
				sim := netlist.NewSimulator(n)
				for f := 0; f < n.NumFFs(); f++ {
					sim.SetFF(netlist.FFID(f), rng.Intn(2) == 1)
				}
				for i := 0; i < len(n.Inputs); i++ {
					sim.SetInput(i, rng.Intn(2) == 1)
				}
				sim.SetFF(netlist.FFID(a), false)
				sim.Eval()
				v0 := sim.NodeValue(n.FFs[b].D)
				sim.SetFF(netlist.FFID(a), true)
				sim.Eval()
				v1 := sim.NodeValue(n.FFs[b].D)
				if v0 != v1 {
					found = true
				}
			}
			if !found {
				t.Fatalf("no simulation witness for functional dep of %d on %d", b, a)
			}
		}
	}
}

func BenchmarkOneCycleExact(b *testing.B) {
	g := netlist.Generate(netlist.DefaultGenConfig([]string{"a", "b", "c", "d"}, 8), 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var st Stats
		OneCycleMatrix(g.N, Exact, &st)
	}
}

func BenchmarkClosure(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 400
	base := NewMatrix(n)
	for e := 0; e < n*4; e++ {
		base.Set(rng.Intn(n), rng.Intn(n), Kind(1+rng.Intn(2)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := base.Clone()
		Closure(m)
	}
}

func TestFunctionalWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	checked := 0
	for iter := 0; iter < 40; iter++ {
		g := netlist.Generate(netlist.DefaultGenConfig([]string{"a", "b"}, 3), rng.Int63())
		n := g.N
		for b := 0; b < n.NumFFs() && checked < 200; b++ {
			root := n.FFs[b].D
			for _, a := range n.SupportFFs(root) {
				leaf := n.FFs[a].Node
				w, ok := FunctionalWitness(n, root, leaf)
				if ok != FunctionalDepends(n, root, leaf) {
					t.Fatal("witness presence disagrees with FunctionalDepends")
				}
				if ok {
					if !CheckWitness(n, w) {
						t.Fatalf("witness does not check out for root %d leaf %d", root, leaf)
					}
					checked++
				}
			}
		}
	}
	if checked < 20 {
		t.Fatalf("only %d witnesses checked", checked)
	}
}

func TestFunctionalWitnessAbsent(t *testing.T) {
	// Masked reconvergence: no witness exists for the masked leaf.
	n := netlist.New()
	m := n.AddModule("m")
	s := n.AddFF("s", m)
	c := n.AddFF("c", m)
	inner := n.AddGate(netlist.Xor, n.FFs[s].Node, n.FFs[c].Node)
	outer := n.AddGate(netlist.Xor, n.FFs[s].Node, inner)
	if _, ok := FunctionalWitness(n, outer, n.FFs[s].Node); ok {
		t.Fatal("masked leaf must have no witness")
	}
	w, ok := FunctionalWitness(n, outer, n.FFs[c].Node)
	if !ok || !CheckWitness(n, w) {
		t.Fatal("carrier leaf needs a valid witness")
	}
}

func TestFunctionalWitnessNotInCone(t *testing.T) {
	n := netlist.New()
	m := n.AddModule("m")
	a := n.AddFF("a", m)
	b := n.AddFF("b", m)
	d := n.AddGate(netlist.Buf, n.FFs[a].Node)
	if _, ok := FunctionalWitness(n, d, n.FFs[b].Node); ok {
		t.Fatal("leaf outside the cone cannot have a witness")
	}
}

func TestCombineAlgebraProperties(t *testing.T) {
	kinds := []Kind{None, Structural, Path}
	for _, a := range kinds {
		for _, b := range kinds {
			// Combine is commutative; Max is commutative and idempotent.
			if Combine(a, b) != Combine(b, a) {
				t.Fatalf("Combine not commutative at (%v,%v)", a, b)
			}
			if Max(a, b) != Max(b, a) {
				t.Fatalf("Max not commutative at (%v,%v)", a, b)
			}
			for _, c := range kinds {
				if Combine(Combine(a, b), c) != Combine(a, Combine(b, c)) {
					t.Fatalf("Combine not associative at (%v,%v,%v)", a, b, c)
				}
				if Max(Max(a, b), c) != Max(a, Max(b, c)) {
					t.Fatalf("Max not associative at (%v,%v,%v)", a, b, c)
				}
				// Combine distributes over Max (semiring law).
				if Combine(a, Max(b, c)) != Max(Combine(a, b), Combine(a, c)) {
					t.Fatalf("distributivity fails at (%v,%v,%v)", a, b, c)
				}
			}
		}
		if Max(a, a) != a {
			t.Fatalf("Max not idempotent at %v", a)
		}
		// Path is the multiplicative identity; None annihilates.
		if Combine(a, Path) != a || Combine(a, None) != None {
			t.Fatalf("identity/annihilator fail at %v", a)
		}
	}
}

func TestClosureMonotone(t *testing.T) {
	// Adding an edge never removes closure entries.
	rng := rand.New(rand.NewSource(71))
	for iter := 0; iter < 20; iter++ {
		n := 6 + rng.Intn(6)
		m1 := NewMatrix(n)
		for e := 0; e < n; e++ {
			m1.Set(rng.Intn(n), rng.Intn(n), Kind(1+rng.Intn(2)))
		}
		m2 := m1.Clone()
		m2.Set(rng.Intn(n), rng.Intn(n), Path)
		Closure(m1)
		Closure(m2)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if m2.Kind(i, j) < m1.Kind(i, j) {
					t.Fatalf("closure not monotone at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestClosureKBounded(t *testing.T) {
	// Chain 0 <- 1 <- 2 <- 3 <- 4 (Set(i, j): i depends on j).
	m := NewMatrix(5)
	for i := 1; i < 5; i++ {
		m.Set(i, i-1, Path)
	}
	k2 := m.Clone()
	ClosureK(k2, 2)
	if k2.Kind(2, 0) != Path {
		t.Fatal("2-chain missing at k=2")
	}
	if k2.Kind(3, 0) != None {
		t.Fatal("3-chain must be absent at k=2")
	}
	k3 := m.Clone()
	ClosureK(k3, 3)
	if k3.Kind(3, 0) != Path || k3.Kind(4, 0) != None {
		t.Fatalf("k=3 bounds wrong: %v %v", k3.Kind(3, 0), k3.Kind(4, 0))
	}
	full := m.Clone()
	ClosureK(full, 10)
	if full.Kind(4, 0) != Path {
		t.Fatal("full chain missing at large k")
	}
}

func TestClosureKConvergesToClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 20; iter++ {
		n := 4 + rng.Intn(8)
		m := NewMatrix(n)
		for e := 0; e < 2*n; e++ {
			m.Set(rng.Intn(n), rng.Intn(n), Kind(1+rng.Intn(2)))
		}
		bounded := m.Clone()
		ClosureK(bounded, n+1) // chains longer than n repeat a node
		fixpoint := m.Clone()
		Closure(fixpoint)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if bounded.Kind(i, j) != fixpoint.Kind(i, j) {
					t.Fatalf("iter %d: ClosureK(n+1) != Closure at (%d,%d)", iter, i, j)
				}
			}
		}
	}
}

func TestClosureKMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	n := 8
	m := NewMatrix(n)
	for e := 0; e < 2*n; e++ {
		m.Set(rng.Intn(n), rng.Intn(n), Kind(1+rng.Intn(2)))
	}
	prev := m.Clone()
	ClosureK(prev, 1)
	for k := 2; k <= 6; k++ {
		cur := m.Clone()
		ClosureK(cur, k)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if cur.Kind(i, j) < prev.Kind(i, j) {
					t.Fatalf("k=%d lost entry (%d,%d)", k, i, j)
				}
			}
		}
		prev = cur
	}
}
