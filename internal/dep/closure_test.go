package dep

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/engine"
)

// reverseConsistent checks that the reverse adjacency mirrors the
// forward rows exactly (Matrix.Equal only compares forward rows).
func reverseConsistent(t *testing.T, m *Matrix) {
	t.Helper()
	for i := 0; i < m.N(); i++ {
		i := i
		m.path[i].ForEach(func(j int) {
			if !m.rpath[j].Has(i) {
				t.Fatalf("rpath[%d] missing %d", j, i)
			}
		})
		m.rpath[i].ForEach(func(j int) {
			if !m.path[j].Has(i) {
				t.Fatalf("rpath[%d] has stale %d", i, j)
			}
		})
		m.str[i].ForEach(func(j int) {
			if !m.rstr[j].Has(i) {
				t.Fatalf("rstr[%d] missing %d", j, i)
			}
		})
		m.rstr[i].ForEach(func(j int) {
			if !m.str[j].Has(i) {
				t.Fatalf("rstr[%d] has stale %d", i, j)
			}
		})
	}
}

// TestSCCClosureMatchesWarshall is the differential check of the sparse
// closure: on random matrices of varying size, density and cyclicity —
// with both Path and Structural entries — and on the dependency
// matrices of scaled catalog benchmarks in both modes, ClosureOpts must
// produce matrices bit-identical to the dense Warshall reference at any
// worker count, with consistent reverse adjacency.
func TestSCCClosureMatchesWarshall(t *testing.T) {
	check := func(t *testing.T, base *Matrix) {
		t.Helper()
		ref := base.Clone()
		ClosureWarshall(ref)
		for _, workers := range []int{1, 3, 8} {
			m := base.Clone()
			if err := ClosureOpts(m, engine.Options{Workers: workers}); err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if !m.Equal(ref) {
				t.Fatalf("workers=%d: SCC closure differs from Warshall", workers)
			}
			reverseConsistent(t, m)
		}
	}

	t.Run("random", func(t *testing.T) {
		rng := rand.New(rand.NewSource(47))
		for iter := 0; iter < 80; iter++ {
			n := 2 + rng.Intn(40)
			base := NewMatrix(n)
			// Sweep density from sparse DAG-like up to heavily cyclic;
			// include self-loops (i == j is allowed by Intn collisions).
			edges := rng.Intn(4 * n)
			for e := 0; e < edges; e++ {
				base.Set(rng.Intn(n), rng.Intn(n), Kind(1+rng.Intn(2)))
			}
			check(t, base)
		}
		// A few long chains and pure cycles: the shapes register chains
		// and capture/update couplings produce after bridging.
		for _, n := range []int{1, 2, 65, 130} {
			chain := NewMatrix(n)
			ring := NewMatrix(n)
			for i := 1; i < n; i++ {
				chain.Set(i, i-1, Path)
				ring.Set(i, i-1, Structural)
			}
			if n > 1 {
				ring.Set(0, n-1, Path)
			}
			check(t, chain)
			check(t, ring)
		}
	})

	t.Run("catalog", func(t *testing.T) {
		for _, name := range []string{"BasicSCB", "TreeFlat", "MBIST_1_5_5"} {
			for _, mode := range []Mode{Exact, StructuralApprox} {
				t.Run(name+"/"+mode.String(), func(t *testing.T) {
					b, ok := bench.ByName(name)
					if !ok {
						t.Fatalf("unknown benchmark %q", name)
					}
					att := bench.AttachCircuit(b.Build(0.15), bench.DefaultCircuitConfig(), 7)
					var stats Stats
					m := OneCycleMatrix(att.Circuit, mode, &stats)
					Bridge(m, att.Internal)
					check(t, m)
				})
			}
		}
	})
}

// TestClosureOptsCancellation checks that a cancelled context stops the
// closure with the context's error and leaves the matrix untouched.
func TestClosureOptsCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	base := NewMatrix(60)
	for e := 0; e < 200; e++ {
		base.Set(rng.Intn(60), rng.Intn(60), Kind(1+rng.Intn(2)))
	}
	m := base.Clone()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ClosureOpts(m, engine.Options{Context: ctx}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !m.Equal(base) {
		t.Fatal("cancelled closure modified the matrix")
	}
}

// TestClosureItemsCounter checks that the stage items counter records
// the condensed component count of both relations.
func TestClosureItemsCounter(t *testing.T) {
	m := NewMatrix(4)
	m.Set(1, 0, Path)
	m.Set(2, 1, Path)
	m.Set(1, 2, Path) // 1 and 2 form one SCC of the path relation
	stats := engine.NewStats()
	if err := ClosureOpts(m, engine.Options{Stats: stats}); err != nil {
		t.Fatal(err)
	}
	// path relation: {0}, {1,2}, {3} = 3 components; str relation (a
	// superset, same edges here): 3 components as well.
	if got := stats.Stage("closure").Items(); got != 6 {
		t.Fatalf("closure items = %d, want 6", got)
	}
}

// BenchmarkClosureWarshall is the dense reference baseline for
// BenchmarkClosure (which runs the sparse SCC condensation).
func BenchmarkClosureWarshall(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 400
	base := NewMatrix(n)
	for e := 0; e < n*4; e++ {
		base.Set(rng.Intn(n), rng.Intn(n), Kind(1+rng.Intn(2)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := base.Clone()
		ClosureWarshall(m)
	}
}
