// Sparse multi-cycle closure: Tarjan SCC condensation followed by
// reverse-topological bitset row unions.
//
// The dense Warshall closure (ClosureWarshall) is cubic in the matrix
// dimension regardless of how sparse the dependency graph is. After
// bridging the graph is sparse and almost acyclic — register chains and
// capture/update couplings produce long DAG-like strands with small
// cycles — so the condensation is near-linear: every strongly connected
// component's closure row is the union of its successors' rows (plus
// its own members when the component is cyclic), and Tarjan emits
// components in reverse topological order, meaning every successor is
// finished before its predecessors start. Components on the same
// topological level are independent and fan out over the engine worker
// pool; unions of bit sets are commutative and each component writes
// only its own rows, so results are bit-identical to the sequential
// computation — and to the Warshall reference — at any worker count
// (TestSCCClosureMatchesWarshall checks this differentially).

package dep

import (
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/engine"
	"repro/internal/obs"
)

// ClosureOpts computes the multi-cycle dependency closure in place under
// an engine configuration: the transitive closure of path edges and,
// independently, of structural edges (a chain containing any
// only-structural link is structural). Cancellation is honored between
// topological levels; on cancellation the matrix is left untouched and
// the context error is returned. The stage "closure" items counter
// receives the number of condensed components.
func ClosureOpts(m *Matrix, opts engine.Options) error {
	stage := opts.Stage("closure")
	span := opts.StartSpan("closure", obs.Int("nodes", int64(m.N())))
	defer span.End()
	np, ncp, err := closedRows(m.path, opts)
	if err != nil {
		return err
	}
	ns, ncs, err := closedRows(m.str, opts)
	if err != nil {
		return err
	}
	m.path = np
	m.str = ns
	stage.AddItems(int64(ncp + ncs))
	span.SetAttrs(obs.Int("sccs_path", int64(ncp)), obs.Int("sccs_structural", int64(ncs)))
	rebuildReverse(m)
	return nil
}

// closedRows returns the transitive closure of one relation as fresh
// rows (the input rows are not modified), plus the number of strongly
// connected components of the relation's graph.
func closedRows(rows []*bitset.Set, opts engine.Options) ([]*bitset.Set, int, error) {
	n := len(rows)
	// Snapshot the adjacency as index slices: bitset iteration is
	// ascending, so successor lists are canonical.
	adj := make([][]int32, n)
	for i := 0; i < n; i++ {
		if !rows[i].Any() {
			continue
		}
		s := make([]int32, 0, rows[i].Count())
		rows[i].ForEach(func(j int) { s = append(s, int32(j)) })
		adj[i] = s
	}
	comp, comps := tarjanSCC(adj, n)
	nc := len(comps)

	// Condensation metadata: cyclic flag, deduped successor components
	// and topological level per component. Tarjan's emission order is
	// reverse topological — for every cross edge C -> C', C' is emitted
	// before C — so one pass in emission order sees successors finished.
	cyclic := make([]bool, nc)
	succ := make([][]int32, nc)
	level := make([]int32, nc)
	maxLevel := int32(0)
	stamp := make([]int32, nc)
	for i := range stamp {
		stamp[i] = -1
	}
	for c := 0; c < nc; c++ {
		members := comps[c]
		cyclic[c] = len(members) > 1
		lv := int32(0)
		for _, u := range members {
			for _, w := range adj[u] {
				cw := comp[w]
				if cw == int32(c) {
					if w == u {
						cyclic[c] = true // self-loop
					}
					continue
				}
				if stamp[cw] != int32(c) {
					stamp[cw] = int32(c)
					succ[c] = append(succ[c], cw)
					if level[cw]+1 > lv {
						lv = level[cw] + 1
					}
				}
			}
		}
		level[c] = lv
		if lv > maxLevel {
			maxLevel = lv
		}
	}
	buckets := make([][]int32, maxLevel+1)
	for c := 0; c < nc; c++ {
		buckets[level[c]] = append(buckets[level[c]], int32(c))
	}

	// Reverse-topological row unions, level by level. down[c] is the
	// reachability set of component c including its own members; the
	// result row of every member is down of the successors, plus the
	// members themselves when the component is cyclic (a node on a cycle
	// reaches itself). Components of one level are independent — each
	// writes only its own down set and member rows — so a level fans out
	// over the worker pool with a barrier in between, and the unions
	// commute, keeping results bit-identical at any worker count.
	down := make([]*bitset.Set, nc)
	out := make([]*bitset.Set, n)
	workers := opts.WorkerCount()
	ctx := opts.Ctx()
	process := func(c int32) {
		members := comps[c]
		res := bitset.New(n)
		for _, s := range succ[c] {
			res.Or(down[s])
		}
		if cyclic[c] {
			for _, u := range members {
				res.Set(int(u))
			}
		}
		d := res.Clone()
		for _, u := range members {
			d.Set(int(u))
		}
		down[c] = d
		out[members[0]] = res
		for _, u := range members[1:] {
			out[u] = res.Clone()
		}
	}
	for _, bucket := range buckets {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		w := workers
		if w > len(bucket) {
			w = len(bucket)
		}
		if w <= 1 {
			for _, c := range bucket {
				process(c)
			}
			continue
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < w; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					idx := int(next.Add(1)) - 1
					if idx >= len(bucket) {
						return
					}
					process(bucket[idx])
				}
			}()
		}
		wg.Wait()
	}
	return out, nc, nil
}

// tarjanSCC computes the strongly connected components of the graph
// given as adjacency lists, iteratively (no recursion — register chains
// make paths thousands of nodes long). It returns the component id per
// node and the member lists in reverse topological emission order:
// every component is emitted after all components reachable from it.
func tarjanSCC(adj [][]int32, n int) (comp []int32, comps [][]int32) {
	comp = make([]int32, n)
	index := make([]int32, n) // 0 = unvisited, otherwise discovery index + 1
	low := make([]int32, n)
	onStack := make([]bool, n)
	sccStack := make([]int32, 0, 64)
	var counter int32 = 1

	type frame struct {
		v  int32
		si int
	}
	var dfs []frame
	for root := 0; root < n; root++ {
		if index[root] != 0 {
			continue
		}
		index[root] = counter
		low[root] = counter
		counter++
		sccStack = append(sccStack, int32(root))
		onStack[root] = true
		dfs = append(dfs[:0], frame{int32(root), 0})
		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			v := f.v
			if f.si < len(adj[v]) {
				w := adj[v][f.si]
				f.si++
				if index[w] == 0 {
					index[w] = counter
					low[w] = counter
					counter++
					sccStack = append(sccStack, w)
					onStack[w] = true
					dfs = append(dfs, frame{w, 0})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			if low[v] == index[v] {
				var members []int32
				for {
					w := sccStack[len(sccStack)-1]
					sccStack = sccStack[:len(sccStack)-1]
					onStack[w] = false
					comp[w] = int32(len(comps))
					members = append(members, w)
					if w == v {
						break
					}
				}
				comps = append(comps, members)
			}
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				p := &dfs[len(dfs)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
		}
	}
	return comp, comps
}
