package dep

import (
	"repro/internal/netlist"
)

// This file implements the bit-parallel random-simulation prefilter of
// the 1-cycle computation. A functional dependence query asks whether
// some assignment of the cone's other leaves lets a flip of one leaf
// flip the root — an existential question, so any concrete witness
// settles it positively without a SAT call. The prefilter evaluates the
// cone over 64-wide packed random vectors (one uint64 lane per pattern
// pair: the leaf under test is flipped between the pair, every other
// leaf keeps its lane value), proving most functional dependencies for
// a few cone evaluations each. Simulation can only witness Sat — an
// unwitnessed leaf proves nothing and falls through to the exact
// cofactor miter — so the resulting matrices are bit-identical to the
// pure-SAT path.

// defaultSimRounds is the number of 64-pattern simulation rounds per
// root when OneCycleConfig.SimRounds is zero.
const defaultSimRounds = 3

// splitmix64 is a tiny deterministic PRNG (Steele et al., the splitmix64
// generator). Each root seeds its own stream from its node id, so the
// prefilter's verdicts do not depend on worker count or scheduling.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// simGate is one compiled gate: evaluate op over the input slots into
// the output slot, 64 patterns per word at once.
type simGate struct {
	op  netlist.GateType
	out int32
	in  []int32
}

// simCone is one root's fan-in cone compiled to a flat word program:
// integer slots instead of node-id map lookups on the evaluation path.
// Leaves occupy the first slots, gate outputs follow in topological
// order.
type simCone struct {
	gates []simGate
	words []uint64
	// leafSlots[i] is the word slot of leaves[i]; -1 for constant
	// leaves, whose words are fixed at compile time and never
	// re-randomized.
	leafSlots []int32
	rootSlot  int32
	rng       splitmix64
	evals     int64 // cone evaluations performed
}

// newSimCone compiles root's cone (as returned by netlist.Cone) for
// word-parallel evaluation. It returns nil when the cone contains a
// gate shape the word evaluator does not model (Mux/Maj with an arity
// other than 3); such roots simply skip the prefilter.
func newSimCone(n *netlist.Netlist, root netlist.NodeID, gates, leaves []netlist.NodeID) *simCone {
	sc := &simCone{
		gates:     make([]simGate, 0, len(gates)),
		leafSlots: make([]int32, len(leaves)),
		// Deterministic per-root stream: verdicts are independent of
		// worker count and job scheduling.
		rng: splitmix64((uint64(root) + 1) * 0x9e3779b97f4a7c15),
	}
	slot := make(map[netlist.NodeID]int32, len(gates)+len(leaves))
	next := int32(0)
	for i, l := range leaves {
		slot[l] = next
		sc.leafSlots[i] = next
		next++
	}
	for _, g := range gates {
		nd := &n.Nodes[g]
		if (nd.Gate == netlist.Mux || nd.Gate == netlist.Maj) && len(nd.Fanin) != 3 {
			return nil
		}
		in := make([]int32, len(nd.Fanin))
		for j, f := range nd.Fanin {
			in[j] = slot[f]
		}
		sc.gates = append(sc.gates, simGate{op: nd.Gate, out: next, in: in})
		slot[g] = next
		next++
	}
	sc.words = make([]uint64, next)
	for i, l := range leaves {
		switch n.Nodes[l].Kind {
		case netlist.KindConst0:
			sc.words[sc.leafSlots[i]] = 0
			sc.leafSlots[i] = -1
		case netlist.KindConst1:
			sc.words[sc.leafSlots[i]] = ^uint64(0)
			sc.leafSlots[i] = -1
		}
	}
	sc.rootSlot = slot[root]
	return sc
}

// eval runs the word program and returns the root's 64-pattern word.
func (sc *simCone) eval() uint64 {
	words := sc.words
	sc.evals++
	for i := range sc.gates {
		g := &sc.gates[i]
		var v uint64
		switch g.op {
		case netlist.And, netlist.Nand:
			v = ^uint64(0)
			for _, s := range g.in {
				v &= words[s]
			}
			if g.op == netlist.Nand {
				v = ^v
			}
		case netlist.Or, netlist.Nor:
			for _, s := range g.in {
				v |= words[s]
			}
			if g.op == netlist.Nor {
				v = ^v
			}
		case netlist.Xor, netlist.Xnor:
			for _, s := range g.in {
				v ^= words[s]
			}
			if g.op == netlist.Xnor {
				v = ^v
			}
		case netlist.Not:
			v = ^words[g.in[0]]
		case netlist.Buf:
			v = words[g.in[0]]
		case netlist.Mux:
			sel := words[g.in[0]]
			v = (^sel & words[g.in[1]]) | (sel & words[g.in[2]])
		case netlist.Maj:
			a, b, c := words[g.in[0]], words[g.in[1]], words[g.in[2]]
			v = (a & b) | (a & c) | (b & c)
		}
		words[g.out] = v
	}
	return words[sc.rootSlot]
}

// filter runs up to rounds 64-pattern rounds over the leaves named by
// testIdx (indices into the compiled leaf order; all must have live
// slots). witnessed[k] reports that flipping leaves[testIdx[k]] flipped
// the root in some lane — a concrete proof of functional dependence.
// Rounds stop early once every tested leaf is witnessed.
func (sc *simCone) filter(rounds int, testIdx []int) (witnessed []bool) {
	if rounds <= 0 {
		rounds = defaultSimRounds
	}
	witnessed = make([]bool, len(testIdx))
	remaining := len(testIdx)
	for r := 0; r < rounds && remaining > 0; r++ {
		for _, s := range sc.leafSlots {
			if s >= 0 {
				sc.words[s] = sc.rng.next()
			}
		}
		base := sc.eval()
		for k, li := range testIdx {
			if witnessed[k] {
				continue
			}
			s := sc.leafSlots[li]
			sc.words[s] = ^sc.words[s]
			flipped := sc.eval()
			sc.words[s] = ^sc.words[s]
			if flipped != base {
				witnessed[k] = true
				remaining--
			}
		}
	}
	return witnessed
}
