// Package rsnsec analyzes and transforms reconfigurable scan networks
// (RSNs, IEEE Std 1687) so that no pure or hybrid scan path can move
// confidential data into untrusted instruments — a from-scratch
// reproduction of "On Secure Data Flow in Reconfigurable Scan
// Networks" (Raiola et al., DATE 2019).
//
// The library bundles everything the method needs, built on the
// standard library alone:
//
//   - a scan network model with capture/shift/update semantics,
//     active-path configuration and structural transformation
//     (NewNetwork, Simulate via NewNetworkSimulator);
//   - a gate-level circuit model with simulation and seeded random
//     generation (NewNetlist, GenerateCircuit);
//   - a CDCL SAT solver driving the exact functional-vs-structural
//     dependency classification;
//   - the security specification of trust categories and accepted
//     sets (NewSpec, GenerateSpec);
//   - the full secure-data-flow pipeline (Secure): pure-path
//     detection/resolution, SAT-based multi-cycle dependency analysis
//     with presetting and bridging, insecure-circuit-logic detection,
//     and hybrid-path detection/resolution at flip-flop granularity;
//   - an ICL-dialect parser and writer (ParseICL, WriteICL);
//   - the 22 benchmark networks of the paper's Table I (Catalog) and
//     the experimental protocol that regenerates the paper's results
//     (RunBenchmark, RunBridging, RunApprox).
//
// Quickstart:
//
//	ex := rsnsec.RunningExample()
//	rep, err := rsnsec.Secure(ex.Network, ex.Circuit, ex.Internal, ex.Spec, rsnsec.Options{})
//	// rep.PureChanges, rep.HybridChanges, rep.Secured ...
package rsnsec

import (
	"context"
	"io"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/hybrid"
	"repro/internal/icl"
	"repro/internal/netlist"
	"repro/internal/obfus"
	"repro/internal/obs"
	"repro/internal/obs/perfrec"
	"repro/internal/obs/reportdiff"
	"repro/internal/paperex"
	"repro/internal/pure"
	"repro/internal/rsn"
	"repro/internal/secspec"
	"repro/internal/verify"
)

// Scan network model.
type (
	// Network is a reconfigurable scan network.
	Network = rsn.Network
	// Ref references a network element (register, mux, or port).
	Ref = rsn.Ref
	// Sink is one rewirable input pin of a network element.
	Sink = rsn.Sink
	// ScanConfig selects one input per scan multiplexer.
	ScanConfig = rsn.Config
	// NetworkSimulator executes capture/shift/update phases.
	NetworkSimulator = rsn.Simulator
	// NetworkStats summarizes a network's structure.
	NetworkStats = rsn.Stats
)

// Port references and element constructors, re-exported.
var (
	ScanIn  = rsn.ScanIn
	ScanOut = rsn.ScanOut
)

// NewNetwork returns an empty scan network.
func NewNetwork(name string) *Network { return rsn.New(name) }

// RegRef returns a reference to register id.
func RegRef(id int) Ref { return rsn.Reg(id) }

// MuxRef returns a reference to mux id.
func MuxRef(id int) Ref { return rsn.Mx(id) }

// NewNetworkSimulator returns a simulator for the network, optionally
// coupled to a circuit simulator (may be nil).
func NewNetworkSimulator(nw *Network, circuit *CircuitSimulator) *NetworkSimulator {
	return rsn.NewSimulator(nw, circuit)
}

// Circuit model.
type (
	// Netlist is a gate-level sequential circuit.
	Netlist = netlist.Netlist
	// FFID identifies a circuit flip-flop.
	FFID = netlist.FFID
	// NodeID identifies a netlist node.
	NodeID = netlist.NodeID
	// GateType enumerates combinational gate functions.
	GateType = netlist.GateType
	// CircuitSimulator evaluates a netlist cycle by cycle.
	CircuitSimulator = netlist.Simulator
	// CircuitGenConfig parameterizes random circuit generation.
	CircuitGenConfig = netlist.GenConfig
	// GeneratedCircuit is a random circuit with its RSN-facing and
	// internal flip-flops identified.
	GeneratedCircuit = netlist.Generated
)

// Gate types, re-exported.
const (
	And  = netlist.And
	Or   = netlist.Or
	Nand = netlist.Nand
	Nor  = netlist.Nor
	Xor  = netlist.Xor
	Xnor = netlist.Xnor
	Not  = netlist.Not
	Buf  = netlist.Buf
	Mux  = netlist.Mux
	Maj  = netlist.Maj
)

// NoFF marks the absence of a circuit flip-flop link.
const NoFF = netlist.NoFF

// NewNetlist returns an empty circuit.
func NewNetlist() *Netlist { return netlist.New() }

// NewCircuitSimulator returns a simulator over the circuit.
func NewCircuitSimulator(n *Netlist) *CircuitSimulator { return netlist.NewSimulator(n) }

// GenerateCircuit builds a seeded random reconvergent circuit.
func GenerateCircuit(cfg CircuitGenConfig, seed int64) *GeneratedCircuit {
	return netlist.Generate(cfg, seed)
}

// Security specification.
type (
	// Spec annotates modules with trust categories and accepted sets.
	Spec = secspec.Spec
	// Category is a trust category.
	Category = secspec.Category
	// CatSet is a set of trust categories.
	CatSet = secspec.CatSet
	// SpecGenConfig parameterizes random specification generation.
	SpecGenConfig = secspec.GenConfig
)

// NewSpec returns an unrestricted specification over the given module
// and category counts.
func NewSpec(numModules, numCategories int) *Spec { return secspec.New(numModules, numCategories) }

// NewCatSet builds a category set.
func NewCatSet(cats ...Category) CatSet { return secspec.NewCatSet(cats...) }

// AllCats returns the set of all categories below n.
func AllCats(n int) CatSet { return secspec.AllCats(n) }

// GenerateSpec builds a seeded random specification.
func GenerateSpec(numModules int, cfg SpecGenConfig, seed int64) *Spec {
	return secspec.Generate(numModules, cfg, seed)
}

// DefaultSpecGenConfig mirrors the paper's random specifications.
func DefaultSpecGenConfig() SpecGenConfig { return secspec.DefaultGenConfig() }

// GenerateSpecWithRoles builds a random specification whose
// confidential annotations align with the circuit's data-source modules
// (see Attachment.DataSources) — the experimental protocol's generator.
func GenerateSpecWithRoles(numModules int, dataSources []bool, cfg SpecGenConfig, seed int64) *Spec {
	return secspec.GenerateWithRoles(numModules, dataSources, cfg, seed)
}

// The method.
type (
	// Options configures Secure.
	Options = core.Options
	// Report is the outcome of Secure.
	Report = core.Report
	// Mode selects exact or structurally over-approximated
	// dependencies.
	Mode = dep.Mode
	// Analysis is the reusable fixed-infrastructure data-flow analysis.
	Analysis = hybrid.Analysis
	// PureChange and HybridChange describe applied transformations.
	PureChange = pure.Change
	// HybridChange describes one hybrid-stage transformation.
	HybridChange = hybrid.Change
)

// Dependency modes, re-exported.
const (
	Exact            = dep.Exact
	StructuralApprox = dep.StructuralApprox
)

// Secure runs the complete pipeline of the paper (Figure 2) on the
// network, transforming it into a data-flow secure RSN. internal lists
// the circuit's flip-flops that are not connected to the scan
// infrastructure (they are bridged during the dependency analysis).
func Secure(nw *Network, circuit *Netlist, internal []FFID, spec *Spec, opts Options) (*Report, error) {
	return core.Secure(nw, circuit, internal, spec, opts)
}

// NewAnalysis exposes the underlying data-flow analysis for callers
// that detect violations without transforming the network.
func NewAnalysis(nw *Network, circuit *Netlist, internal []FFID, spec *Spec, mode Mode) *Analysis {
	return hybrid.NewAnalysis(nw, circuit, internal, spec, mode)
}

// Engine orchestration: worker pools, cancellation and per-stage
// instrumentation of the analysis pipeline.
type (
	// EngineOptions configures worker count, cancellation context,
	// progress sink and stats collection of one analysis run.
	EngineOptions = engine.Options
	// EngineStats accumulates race-safe per-stage wall times and query
	// counts; its String method renders an aligned table.
	EngineStats = engine.Stats
	// EngineStage is one stage's totals in an EngineStats snapshot.
	EngineStage = engine.StageSnapshot
)

// NewEngineStats returns an empty per-stage stats collector.
func NewEngineStats() *EngineStats { return engine.NewStats() }

// Observability: structured run tracing, a metrics registry with
// expvar/Prometheus exposition, an optional pprof debug server, and
// machine-readable run reports.
type (
	// Tracer emits hierarchical spans (run > circuit > stage > query)
	// to a pluggable sink, with per-name sampling for high-frequency
	// query spans.
	Tracer = obs.Tracer
	// TraceSpan is one timed region of the run hierarchy.
	TraceSpan = obs.Span
	// TraceAttr is one span attribute.
	TraceAttr = obs.Attr
	// TraceSink receives finished span events.
	TraceSink = obs.Sink
	// TraceEvent is one finished span as handed to the sink.
	TraceEvent = obs.Event
	// MetricsRegistry holds counters, gauges and histograms and renders
	// them as Prometheus text or expvar JSON.
	MetricsRegistry = obs.Registry
	// DebugServer is the -debug-addr HTTP listener (expvar, Prometheus
	// text metrics, net/http/pprof).
	DebugServer = obs.DebugServer
	// RunReport is the schema-versioned machine-readable outcome of an
	// experimental run.
	RunReport = obs.RunReport
)

// RunReportSchema is the run-report schema identifier accepted by
// ReadRunReport.
const RunReportSchema = obs.ReportSchema

// NewTracer returns a tracer emitting finished spans to sink.
func NewTracer(sink TraceSink) *Tracer { return obs.NewTracer(sink) }

// NewJSONLTraceSink returns a sink writing one JSON event per line.
func NewJSONLTraceSink(w io.Writer) TraceSink { return obs.NewJSONLSink(w) }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewEngineStatsOn returns a per-stage stats collector registering its
// counters in the given registry, so a debug server can expose them
// live during a run.
func NewEngineStatsOn(reg *MetricsRegistry) *EngineStats { return engine.NewStatsOn(reg) }

// StartDebugServer serves /metrics (Prometheus text), /debug/vars
// (expvar) and /debug/pprof/ on addr in a background goroutine.
func StartDebugServer(addr string, reg *MetricsRegistry) (*DebugServer, error) {
	return obs.StartDebug(addr, reg)
}

// BuildRunReport assembles the machine-readable report of a protocol
// run from per-benchmark results and the engine stats (may be nil).
func BuildRunReport(tool, table string, cfg RunConfig, results []*RunResult, stats *EngineStats) *RunReport {
	return exp.BuildReport(tool, table, cfg, results, stats)
}

// WriteRunReport serializes a report as indented JSON.
func WriteRunReport(w io.Writer, r *RunReport) error { return obs.WriteReport(w, r) }

// ReadRunReport parses and validates a report.
func ReadRunReport(r io.Reader) (*RunReport, error) { return obs.ReadReport(r) }

// Performance observatory: schema-versioned bench records with
// noise-aware regression gating.
type (
	// BenchRecord is the schema-versioned performance record of a
	// protocol run: per-stage wall-time medians with MAD noise
	// estimates, SAT totals, memory peaks and the environment
	// fingerprint.
	BenchRecord = perfrec.Record
	// BenchRegression is one gated delta that exceeded its noise
	// allowance.
	BenchRegression = perfrec.Regression
	// BenchLimits parameterizes the noise-aware regression gate.
	BenchLimits = perfrec.Limits
	// BenchEnvironment is a record's machine fingerprint.
	BenchEnvironment = perfrec.Environment
	// BenchCollectOptions parameterizes CollectBenchRecord.
	BenchCollectOptions = exp.CollectOptions
)

// BenchRecordSchema is the bench-record schema identifier accepted by
// ReadBenchRecord.
const BenchRecordSchema = perfrec.BenchSchema

// CollectBenchRecord measures the Table I protocol opts.Reps times per
// benchmark under private instrumentation and returns the assembled
// schema-valid bench record; stage wall times come from real trace
// spans of the runs.
func CollectBenchRecord(ctx context.Context, benchmarks []Benchmark, cfg RunConfig, opts BenchCollectOptions) (*BenchRecord, error) {
	return exp.CollectBenchRecord(ctx, benchmarks, cfg, opts)
}

// CompareBenchRecords gates new against old and returns every
// regression exceeding max(threshold·old, k·MAD) (plus the memory
// gate); the zero Limits value uses the defaults.
func CompareBenchRecords(old, new *BenchRecord, lim BenchLimits) []BenchRegression {
	return perfrec.Compare(old, new, lim)
}

// WriteBenchRecord serializes a record as indented JSON.
func WriteBenchRecord(w io.Writer, r *BenchRecord) error { return perfrec.Write(w, r) }

// ReadBenchRecord parses and validates a bench record.
func ReadBenchRecord(r io.Reader) (*BenchRecord, error) { return perfrec.Read(r) }

// CaptureBenchEnvironment fingerprints the current machine and
// toolchain for a bench record.
func CaptureBenchEnvironment(commit string) BenchEnvironment {
	return perfrec.CaptureEnvironment(commit)
}

// FormatBenchRegressions renders the gate outcome, one line per
// regression ("performance gate clean" when empty).
func FormatBenchRegressions(regs []BenchRegression) string { return perfrec.FormatRegressions(regs) }

// NewAnalysisOpts is NewAnalysis under an engine configuration: the
// SAT-classified 1-cycle dependencies fan out over the engine's worker
// pool, cancellation is honored between SAT queries, and per-stage
// stats accumulate into opts.Stats.
func NewAnalysisOpts(nw *Network, circuit *Netlist, internal []FFID, spec *Spec, mode Mode, opts EngineOptions) (*Analysis, error) {
	return hybrid.NewAnalysisOpts(nw, circuit, internal, spec, mode, opts)
}

// Incremental analysis sessions: first-class edit scripts over the
// scan network, snapshot/restore of an Analysis's propagated fixed
// point, and the incremental re-secure path that skips the dependency
// calculation for wiring-only edits. The aliased Analysis type carries
// the session methods directly: Snapshot, Restore, ApplyDelta and
// WithEngine.
type (
	// EditScript is an ordered list of structural edit operations on a
	// network, with a canonical content-addressable encoding
	// (AppendCanonical/CanonicalHash) and Apply producing the derived
	// network without mutating the base.
	EditScript = rsn.EditScript
	// EditOp is one edit-script operation.
	EditOp = rsn.EditOp
	// AnalysisSnapshot is the serializable propagated fixed point of an
	// Analysis over one network wiring (Encode/ReadAnalysisSnapshot
	// round trip, Analysis.Restore to install).
	AnalysisSnapshot = hybrid.Snapshot
	// DeltaResult is the outcome of one incremental SecureDelta run.
	DeltaResult = exp.DeltaResult
	// DeltaDoc pairs a delta run's report with the structured diff
	// against its parent report — the rsnsec.delta-report/v1 document
	// served by rsnserved and printed by rsnsec -delta.
	DeltaDoc = reportdiff.DeltaDoc
	// ReportDiff is the structured comparison of two run reports.
	ReportDiff = reportdiff.Diff
)

// Edit-script operations, re-exported.
const (
	OpCutReconnect = rsn.OpCutReconnect
	OpConnect      = rsn.OpConnect
	OpAddRegister  = rsn.OpAddRegister
)

// Schema identifiers of the incremental-session documents.
const (
	AnalysisSnapshotSchema = hybrid.SnapshotSchema
	DeltaReportSchema      = reportdiff.DeltaSchema
)

// ErrStructuralDelta reports that an edit script changed the register
// set, so the fixed analysis infrastructure cannot absorb it and a
// fresh Analysis is required (SecureDelta handles this fallback
// automatically).
var ErrStructuralDelta = hybrid.ErrStructuralDelta

// ParseEditScript parses a JSON edit script, rejecting unknown fields
// and empty scripts, and returns it canonicalized.
func ParseEditScript(data []byte) (*EditScript, error) { return rsn.ParseEditScript(data) }

// ParseElemRef parses a network element reference ("SI", "SO", "R<n>",
// "M<n>", case-insensitive) — the spelling edit-script pins use.
func ParseElemRef(s string) (Ref, error) { return rsn.ParseRef(s) }

// SecureWithAnalysis is Secure on a caller-built analysis: the
// dependency matrices and the cached attribute fixed point are reused,
// so repeated runs over rewired variants of one network skip the
// dependency calculation (Times.DependencyCalc stays zero).
func SecureWithAnalysis(an *Analysis, nw *Network, opts Options) (*Report, error) {
	return core.SecureWithAnalysis(an, nw, opts)
}

// SecureDelta applies an edit script to base and runs the resolution
// pipeline on the derived network, reusing an's fixed infrastructure
// whenever the script only rewires; scripts that add registers fall
// back to a fresh analysis. The returned Derived network keeps the
// pre-resolution wiring for chaining further deltas.
func SecureDelta(tool, label string, an *Analysis, base *Network, script *EditScript, opts Options) (*DeltaResult, error) {
	return exp.SecureDelta(tool, label, an, base, script, opts)
}

// SecureRunReport renders one pipeline outcome as a one-row
// rsnsec.run-report/v1 document (stats may be nil).
func SecureRunReport(tool, name string, mode Mode, st NetworkStats, rep *Report, stats *EngineStats) *RunReport {
	return exp.SecureReport(tool, name, mode, st, rep, stats)
}

// ReadAnalysisSnapshot decodes a snapshot against the network it was
// taken over, verifying schema, wiring hash and framing.
func ReadAnalysisSnapshot(nw *Network, data []byte) (*AnalysisSnapshot, error) {
	return hybrid.InitFrom(nw, data)
}

// NewDeltaDoc assembles a delta document, computing the diff of the
// parent report against the delta run's report. baseKey and key are
// the content addresses when the document comes from rsnserved; CLI
// callers leave them empty.
func NewDeltaDoc(baseKey, key, scriptHash string, scriptOps int, parent, report *RunReport) *DeltaDoc {
	return reportdiff.NewDeltaDoc(baseKey, key, scriptHash, scriptOps, parent, report)
}

// WriteDeltaDoc validates and writes the document as indented JSON.
func WriteDeltaDoc(w io.Writer, d *DeltaDoc) error { return reportdiff.WriteDeltaDoc(w, d) }

// ReadDeltaDoc decodes and validates a delta document.
func ReadDeltaDoc(r io.Reader) (*DeltaDoc, error) { return reportdiff.ReadDeltaDoc(r) }

// CompareRunReports computes the structured diff of two run reports.
func CompareRunReports(old, new *RunReport) *ReportDiff { return reportdiff.Compare(old, new) }

// Explanation is a human-readable account of one security violation.
type Explanation = hybrid.Explanation

// ICL round trip.

// ParseICL reads a network from its ICL-dialect description. lookupFF
// resolves circuit flip-flop names in CaptureSource/UpdateSink items
// and may be nil for networks without instrument links.
func ParseICL(src string, lookupFF func(string) (FFID, bool)) (*Network, error) {
	return icl.ParseNetwork(src, lookupFF)
}

// WriteICL renders a network in the ICL dialect.
func WriteICL(w io.Writer, nw *Network, ffName func(FFID) string) error {
	return icl.Write(w, nw, ffName)
}

// ParseICLWithSpec additionally extracts the security specification
// from the file's module annotations (nil when unannotated).
func ParseICLWithSpec(src string, lookupFF func(string) (FFID, bool)) (*Network, *Spec, error) {
	return icl.ParseNetworkAndSpec(src, lookupFF)
}

// WriteICLWithSpec renders a network together with its security
// specification as module Trust/Accepts annotations.
func WriteICLWithSpec(w io.Writer, nw *Network, spec *Spec, ffName func(FFID) string) error {
	return icl.WriteWithSpec(w, nw, spec, ffName)
}

// WriteBench renders a circuit in the classic ISCAS-89 .bench format
// (with "# @module" pragmas carrying module membership).
func WriteBench(w io.Writer, n *Netlist) error { return netlist.WriteBench(w, n) }

// ParseBench reads a circuit from .bench format.
func ParseBench(r io.Reader) (*Netlist, error) { return netlist.ParseBench(r) }

// Benchmarks and experiments.
type (
	// Benchmark describes one reconstructable Table I network.
	Benchmark = bench.Benchmark
	// BenchmarkFamily distinguishes BASTION from industrial networks.
	BenchmarkFamily = bench.Family
	// CircuitConfig controls random circuit attachment.
	CircuitConfig = bench.CircuitConfig
	// Attachment is a circuit wired to a benchmark network.
	Attachment = bench.Attachment
	// RunConfig parameterizes the experimental protocol.
	RunConfig = exp.RunConfig
	// RunResult is one Table I row of measured averages.
	RunResult = exp.Result
	// BridgingResult measures the Section III-A bridging reductions.
	BridgingResult = exp.BridgingResult
	// ApproxResult measures the Section IV-C approximation overheads.
	ApproxResult = exp.ApproxResult
)

// Benchmark families, re-exported.
const (
	BastionFamily    = bench.Bastion
	IndustrialFamily = bench.Industrial
)

// Catalog returns the 22 benchmarks of Table I.
func Catalog() []Benchmark { return bench.Catalog() }

// BenchmarkByName finds a benchmark in the catalog.
func BenchmarkByName(name string) (Benchmark, bool) { return bench.ByName(name) }

// DefaultCircuitConfig returns the default circuit attachment
// parameters.
func DefaultCircuitConfig() CircuitConfig { return bench.DefaultCircuitConfig() }

// AttachCircuit generates and links a random circuit to the network.
func AttachCircuit(nw *Network, cfg CircuitConfig, seed int64) *Attachment {
	return bench.AttachCircuit(nw, cfg, seed)
}

// DefaultRunConfig returns the scaled default experimental protocol.
func DefaultRunConfig() RunConfig { return exp.DefaultRunConfig() }

// QuickRunConfig returns a fast smoke-test protocol.
func QuickRunConfig() RunConfig { return exp.QuickRunConfig() }

// RunBenchmark executes the Table I protocol for one benchmark.
func RunBenchmark(b Benchmark, cfg RunConfig) (*RunResult, error) { return exp.RunBenchmark(b, cfg) }

// RunBenchmarkCtx is RunBenchmark with cancellation between SAT
// queries and (circuit, spec) pairs.
func RunBenchmarkCtx(ctx context.Context, b Benchmark, cfg RunConfig) (*RunResult, error) {
	return exp.RunBenchmarkCtx(ctx, b, cfg)
}

// RunProtocolCtx executes the Table I protocol over a benchmark list —
// the shared driver behind rsnbench's main table and the rsnserved
// analysis jobs. observe (may be nil) receives every finished
// per-benchmark result in order.
func RunProtocolCtx(ctx context.Context, benchmarks []Benchmark, cfg RunConfig, observe func(*RunResult)) ([]*RunResult, error) {
	return exp.RunProtocol(ctx, benchmarks, cfg, observe)
}

// RunBridging measures the bridging reductions for one benchmark.
func RunBridging(b Benchmark, cfg RunConfig) (*BridgingResult, error) {
	return exp.RunBridging(b, cfg)
}

// RunBridgingCtx is RunBridging with cancellation.
func RunBridgingCtx(ctx context.Context, b Benchmark, cfg RunConfig) (*BridgingResult, error) {
	return exp.RunBridgingCtx(ctx, b, cfg)
}

// RunApprox compares exact against structurally over-approximated
// dependencies for one benchmark.
func RunApprox(b Benchmark, cfg RunConfig) (*ApproxResult, error) { return exp.RunApprox(b, cfg) }

// RunApproxCtx is RunApprox with cancellation.
func RunApproxCtx(ctx context.Context, b Benchmark, cfg RunConfig) (*ApproxResult, error) {
	return exp.RunApproxCtx(ctx, b, cfg)
}

// Canonical serialization: versioned, framed SHA-256 digests of
// analysis inputs. Netlist, Network and Spec expose AppendCanonical;
// the digest is the content address rsnserved caches results under.
type CanonHasher = netlist.Hasher

// CanonVersion is the versioned prefix of the canonical encoding.
const CanonVersion = netlist.CanonVersion

// NewCanonHasher returns a hasher seeded with the CanonVersion prefix.
func NewCanonHasher() *CanonHasher { return netlist.NewHasher() }

// Verification.
type (
	// VerifyResult is the outcome of the independent security check.
	VerifyResult = verify.Result
	// CounterexampleFlow is a concrete leaking data path.
	CounterexampleFlow = verify.Flow
)

// Verify independently checks the network against the specification
// with a direct reachability analysis over exhaustively-validated
// functional edges — a second implementation cross-validating Secure.
func Verify(nw *Network, circuit *Netlist, spec *Spec) *VerifyResult {
	return verify.Check(nw, circuit, spec)
}

// RunningExample builds the paper's running example (Figures 1/4/5).
type RunningExampleParts = paperex.Example

// RunningExample returns the running example's circuit, network,
// specification and internal flip-flops.
func RunningExample() *RunningExampleParts { return paperex.New() }

// Scan obfuscation and attack analysis (the internal/obfus subsystem):
// key-gated scan primitives, ScanSAT-style key recovery and the GF(2)
// flush analysis.
type (
	// Obfuscation is a key-gate overlay on a scan network.
	Obfuscation = rsn.Obfuscation
	// ObfusKeyGate is one key-controlled gate (XOR or mux select).
	ObfusKeyGate = rsn.KeyGate
	// ObfusGenConfig drives deterministic overlay generation.
	ObfusGenConfig = obfus.GenConfig
	// AttackOptions parameterizes RunAttackAnalysis.
	AttackOptions = exp.AttackOptions
	// AttackReport is the rsnsec.attack-report/v1 document.
	AttackReport = obfus.Report
	// KeyRecoveryResult reports a ScanSAT key-recovery run.
	KeyRecoveryResult = obfus.KeyRecoveryResult
	// FlushAttackResult reports a GF(2) flush-attack run.
	FlushAttackResult = obfus.FlushResult
)

// Attack-analysis schema identifiers.
const (
	AttackReportSchema = obfus.ReportSchema
	ObfusOverlaySchema = rsn.ObfuscationSchema
)

// ObfuscateNetwork deterministically overlays key gates on a network,
// returning the overlay and the defender's true key.
func ObfuscateNetwork(nw *Network, cfg ObfusGenConfig, seed int64) (*Obfuscation, []bool, error) {
	return obfus.ObfuscateNetwork(nw, cfg, seed)
}

// ParseObfuscationOverlay reads an rsnsec.obfus-overlay/v1 document,
// resolving element names against the network; the returned key is nil
// when the overlay carries none.
func ParseObfuscationOverlay(data []byte, nw *Network) (*Obfuscation, []bool, error) {
	return rsn.ParseObfuscation(data, nw)
}

// MarshalObfuscationOverlay writes the overlay (and the optional
// defender key) as an rsnsec.obfus-overlay/v1 document.
func MarshalObfuscationOverlay(ov *Obfuscation, nw *Network, key []bool) ([]byte, error) {
	return rsn.MarshalObfuscation(ov, nw, key)
}

// RunAttackAnalysis executes the ScanSAT and flush attack stages and
// assembles the rsnsec.attack-report/v1 document.
func RunAttackAnalysis(ctx context.Context, tool string, nw *Network, ov *Obfuscation, trueKey []bool, opts AttackOptions) (*AttackReport, error) {
	return exp.RunAttackAnalysis(ctx, tool, nw, ov, trueKey, opts)
}

// WriteAttackReport serializes an attack report as indented JSON.
func WriteAttackReport(w io.Writer, r *AttackReport) error { return obfus.WriteReport(w, r) }

// ReadAttackReport parses and validates an attack report.
func ReadAttackReport(r io.Reader) (*AttackReport, error) { return obfus.ReadReport(r) }

// ObfusKeyFromSeed derives a deterministic key of n bits from a seed.
func ObfusKeyFromSeed(seed int64, n int) []bool { return rsn.KeyFromSeed(seed, n) }

// ObfusKeyHex formats a key as big-endian hex; ParseObfusKeyHex is its
// inverse for a key of n bits.
func ObfusKeyHex(key []bool) string { return rsn.KeyHex(key) }

// ParseObfusKeyHex parses a big-endian hex key of n bits.
func ParseObfusKeyHex(s string, n int) ([]bool, error) { return rsn.ParseKeyHex(s, n) }

// Streaming scale-up generation (the rsngen -scale-ff path).
type (
	// ScaleGenConfig parameterizes one streamed SIB-hierarchy network.
	ScaleGenConfig = bench.ScaleGenConfig
	// ScaleGenStats summarizes what was streamed.
	ScaleGenStats = bench.ScaleStats
)

// StreamScaleICL streams a SIB-hierarchy scan network of
// cfg.TargetScanFFs flip-flops as ICL to w without materializing it;
// with cfg.ObfKeyBits set, the obfuscation overlay sidecar goes to ovw.
func StreamScaleICL(w, ovw io.Writer, cfg ScaleGenConfig) (*ScaleGenStats, error) {
	return bench.StreamScaleICL(w, ovw, cfg)
}
